package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
)

// TestConcurrentJobsShareScheduler runs a batch of jobs through one
// driver at the same time — the real-engine analogue of the paper's
// Figure 8 — and verifies every job's output is correct and jobs never
// observe each other's tasks.
func TestConcurrentJobsShareScheduler(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 5, slots: 2})
	inputs := map[string]map[string]int{
		"in-a.txt": {"alpha": 40, "omega": 13},
		"in-b.txt": {"beta": 25, "omega": 7},
		"in-c.txt": {"gamma": 61},
	}
	for name, words := range inputs {
		ec.upload(t, name, corpus(words), 256)
	}
	type jobCase struct {
		id    string
		input string
	}
	var jobs []jobCase
	for i := 0; i < 9; i++ {
		input := []string{"in-a.txt", "in-b.txt", "in-c.txt"}[i%3]
		jobs = append(jobs, jobCase{id: fmt.Sprintf("conc-%d", i), input: input})
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, jc := range jobs {
		wg.Add(1)
		go func(jc jobCase) {
			defer wg.Done()
			res, err := ec.driver.Run(JobSpec{
				ID: jc.id, App: "test-wordcount", Inputs: []string{jc.input}, User: "tester",
			})
			if err != nil {
				errs <- fmt.Errorf("%s: %w", jc.id, err)
				return
			}
			kvs, err := ec.driver.Collect(context.Background(), res, "tester")
			if err != nil {
				errs <- fmt.Errorf("%s collect: %w", jc.id, err)
				return
			}
			want := inputs[jc.input]
			got := map[string]int{}
			for _, kv := range kvs {
				n, _ := strconv.Atoi(string(kv.Value))
				got[kv.Key] = n
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("%s: %d words, want %d", jc.id, len(got), len(want))
				return
			}
			for w, n := range want {
				if got[w] != n {
					errs <- fmt.Errorf("%s: count[%q]=%d want %d", jc.id, w, got[w], n)
					return
				}
			}
		}(jc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDuplicateConcurrentJobIDRejected verifies two in-flight jobs cannot
// share an ID (the dispatcher routes assignments by job ID).
func TestDuplicateConcurrentJobIDRejected(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	ec.upload(t, "dup.txt", corpus(map[string]int{"w": 2000}), 64)
	spec := JobSpec{ID: "dup-job", App: "test-wordcount", Inputs: []string{"dup.txt"}, User: "tester"}
	var wg sync.WaitGroup
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := ec.driver.Run(spec)
			results <- err
		}()
	}
	wg.Wait()
	close(results)
	var failures int
	for err := range results {
		if err != nil {
			if !strings.Contains(err.Error(), "already running") {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	// Either both ran sequentially (one finished before the other
	// started) or exactly one was rejected — never both failing.
	if failures > 1 {
		t.Fatalf("both duplicate submissions failed")
	}
}

// TestDriverCloseFailsInFlightJobs verifies Close unblocks a waiting map
// phase with an error rather than hanging.
func TestDriverCloseFailsInFlightJobs(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 2, slots: 1})
	ec.upload(t, "slow.txt", corpus(map[string]int{"x": 500}), 64)
	done := make(chan error, 1)
	go func() {
		_, err := ec.driver.Run(JobSpec{
			ID: "to-close", App: "test-wordcount", Inputs: []string{"slow.txt"}, User: "tester",
		})
		done <- err
	}()
	// Let the job get going, then close the driver. Depending on timing
	// the job may have already finished, which is also fine.
	ec.driver.Close()
	if err := <-done; err != nil && !strings.Contains(err.Error(), "driver closed") {
		t.Fatalf("err = %v", err)
	}
	// New submissions are refused.
	if _, err := ec.driver.Run(JobSpec{
		ID: "after-close", App: "test-wordcount", Inputs: []string{"slow.txt"}, User: "tester",
	}); err == nil {
		t.Fatal("Run succeeded after Close")
	}
}

// TestAsyncSpillOrderedSeqPerPartition pins the sequencing contract of
// the async spill sender: seq is assigned per partition in emit order at
// buffer hand-off, and the single sender goroutine preserves that order
// on the wire, so every partition's stored stream reads 0..n-1 with the
// request's attempt on every segment.
func TestAsyncSpillOrderedSeqPerPartition(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	text, _ := wideCorpus(200, 3)
	ec.upload(t, "seq.txt", text, 1<<20)
	meta, err := ec.fs[ec.ids[0]].Lookup(context.Background(), "seq.txt", "tester")
	if err != nil {
		t.Fatal(err)
	}
	table, err := hashing.AlignedRangeTable(ec.ring)
	if err != nil {
		t.Fatal(err)
	}
	req := RunMapReq{
		Job: "seq-1", Namespace: "job:seq-1", App: "test-wordcount",
		BlockKey: meta.BlockKeys[0], Task: "t0", Attempt: 2,
		ReduceServers: table.Servers(), ReduceBounds: table.Bounds(),
		SpillThreshold: 64,
	}
	if _, err := ec.workers[ec.ids[0]].runMap(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	spills := 0
	for part, owner := range table.Servers() {
		segs := ec.fs[owner].Store().ReadTaggedSegments("job:seq-1", partitionName(part))
		for i, seg := range segs {
			if seg.Task != "t0" || seg.Attempt != 2 {
				t.Fatalf("partition %d segment %d tagged %q attempt %d, want t0/2", part, i, seg.Task, seg.Attempt)
			}
			if seg.Seq != i {
				t.Fatalf("partition %d seq out of order: segment %d carries seq %d", part, i, seg.Seq)
			}
			if _, err := DecodeKVs(seg.Data); err != nil {
				t.Fatalf("partition %d segment %d corrupt: %v", part, i, err)
			}
		}
		spills += len(segs)
	}
	if spills < 2*spillWindow {
		t.Fatalf("only %d spills landed; threshold too high to exercise the pipeline", spills)
	}
}

// TestAsyncSpillBoundedInflight blocks the destination of every spill
// behind a gate and verifies the pipeline's backpressure: the in-flight
// gauge saturates without exceeding the window (queue + one batch, plus
// the single buffer blocked mid-hand-off in emit), the map attempt stays
// blocked until the gate opens, and batching actually coalesces spills.
func TestAsyncSpillBoundedInflight(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	text, _ := wideCorpus(300, 2)
	ec.upload(t, "window.txt", text, 1<<20)
	meta, err := ec.fs[ec.ids[0]].Lookup(context.Background(), "window.txt", "tester")
	if err != nil {
		t.Fatal(err)
	}
	sink := hashing.NodeID("sink")
	gate := make(chan struct{})
	if err := ec.net.Listen(sink, func(ctx context.Context, method string, body []byte) ([]byte, error) {
		if method != dhtfs.MethodAppendSegBatch {
			return nil, fmt.Errorf("unexpected method %s at sink", method)
		}
		<-gate
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	req := RunMapReq{
		Job: "win-1", Namespace: "job:win-1", App: "test-wordcount",
		BlockKey: meta.BlockKeys[0], Task: "t0",
		ReduceServers: []hashing.NodeID{sink}, ReduceBounds: []hashing.Key{0},
		SpillThreshold: 32,
	}
	w := ec.workers[ec.ids[0]]
	gauge := w.Metrics().Gauge("mr.shuffle.inflight")
	done := make(chan error, 1)
	go func() {
		_, err := w.runMap(context.Background(), req)
		done <- err
	}()

	// The window is full once the queue (spillWindow), the batch the
	// sender is blocked pushing (>=1), and the buffer blocked in emit's
	// hand-off (+1) are all accounted: gauge >= spillWindow+2.
	deadline := time.Now().Add(5 * time.Second)
	var max int64
	for {
		if v := gauge.Value(); v > max {
			max = v
		}
		if max >= spillWindow+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("inflight gauge stuck at %d; pipeline never saturated", max)
		}
		time.Sleep(time.Millisecond)
	}
	// Hold the gate a moment longer: the gauge must plateau within the
	// window and the map attempt must not complete.
	for i := 0; i < 50; i++ {
		if v := gauge.Value(); v > max {
			max = v
		}
		time.Sleep(time.Millisecond)
	}
	if max > 2*spillWindow+1 {
		t.Fatalf("inflight gauge reached %d, want <= %d", max, 2*spillWindow+1)
	}
	select {
	case err := <-done:
		t.Fatalf("runMap returned (%v) while every push was gated", err)
	default:
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("inflight gauge = %d after completion, want 0", v)
	}
	snap := w.Metrics().Snapshot()
	spills, batches := snap.Get("mr.shuffle.spills"), snap.Get("mr.shuffle.batches")
	if spills < 2*spillWindow {
		t.Fatalf("only %d spills; threshold too high to exercise batching", spills)
	}
	if batches >= spills {
		t.Fatalf("batches = %d, spills = %d: the backlogged queue never coalesced", batches, spills)
	}
}

// TestAsyncSpillPushErrorFailsAttempt pins that an error from a push
// running in the background fails the whole map attempt: the error
// surfaces from runMap even though app.Map itself succeeded, and the
// pipeline drains instead of deadlocking emit.
func TestAsyncSpillPushErrorFailsAttempt(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 3})
	text, _ := wideCorpus(300, 2)
	ec.upload(t, "pusherr.txt", text, 1<<20)
	meta, err := ec.fs[ec.ids[0]].Lookup(context.Background(), "pusherr.txt", "tester")
	if err != nil {
		t.Fatal(err)
	}
	sink := hashing.NodeID("sink-err")
	if err := ec.net.Listen(sink, func(ctx context.Context, method string, body []byte) ([]byte, error) {
		return nil, fmt.Errorf("disk full")
	}); err != nil {
		t.Fatal(err)
	}
	req := RunMapReq{
		Job: "pe-1", Namespace: "job:pe-1", App: "test-wordcount",
		BlockKey: meta.BlockKeys[0], Task: "t0",
		ReduceServers: []hashing.NodeID{sink}, ReduceBounds: []hashing.Key{0},
		SpillThreshold: 32,
	}
	w := ec.workers[ec.ids[0]]
	_, err = w.runMap(context.Background(), req)
	if err == nil || !strings.Contains(err.Error(), "spill batch") {
		t.Fatalf("err = %v, want spill batch push failure", err)
	}
	if v := w.Metrics().Gauge("mr.shuffle.inflight").Value(); v != 0 {
		t.Fatalf("inflight gauge = %d after failed attempt, want 0", v)
	}
}
