package mapreduce

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentJobsShareScheduler runs a batch of jobs through one
// driver at the same time — the real-engine analogue of the paper's
// Figure 8 — and verifies every job's output is correct and jobs never
// observe each other's tasks.
func TestConcurrentJobsShareScheduler(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 5, slots: 2})
	inputs := map[string]map[string]int{
		"in-a.txt": {"alpha": 40, "omega": 13},
		"in-b.txt": {"beta": 25, "omega": 7},
		"in-c.txt": {"gamma": 61},
	}
	for name, words := range inputs {
		ec.upload(t, name, corpus(words), 256)
	}
	type jobCase struct {
		id    string
		input string
	}
	var jobs []jobCase
	for i := 0; i < 9; i++ {
		input := []string{"in-a.txt", "in-b.txt", "in-c.txt"}[i%3]
		jobs = append(jobs, jobCase{id: fmt.Sprintf("conc-%d", i), input: input})
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, jc := range jobs {
		wg.Add(1)
		go func(jc jobCase) {
			defer wg.Done()
			res, err := ec.driver.Run(JobSpec{
				ID: jc.id, App: "test-wordcount", Inputs: []string{jc.input}, User: "tester",
			})
			if err != nil {
				errs <- fmt.Errorf("%s: %w", jc.id, err)
				return
			}
			kvs, err := ec.driver.Collect(context.Background(), res, "tester")
			if err != nil {
				errs <- fmt.Errorf("%s collect: %w", jc.id, err)
				return
			}
			want := inputs[jc.input]
			got := map[string]int{}
			for _, kv := range kvs {
				n, _ := strconv.Atoi(string(kv.Value))
				got[kv.Key] = n
			}
			if len(got) != len(want) {
				errs <- fmt.Errorf("%s: %d words, want %d", jc.id, len(got), len(want))
				return
			}
			for w, n := range want {
				if got[w] != n {
					errs <- fmt.Errorf("%s: count[%q]=%d want %d", jc.id, w, got[w], n)
					return
				}
			}
		}(jc)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestDuplicateConcurrentJobIDRejected verifies two in-flight jobs cannot
// share an ID (the dispatcher routes assignments by job ID).
func TestDuplicateConcurrentJobIDRejected(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{})
	ec.upload(t, "dup.txt", corpus(map[string]int{"w": 2000}), 64)
	spec := JobSpec{ID: "dup-job", App: "test-wordcount", Inputs: []string{"dup.txt"}, User: "tester"}
	var wg sync.WaitGroup
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := ec.driver.Run(spec)
			results <- err
		}()
	}
	wg.Wait()
	close(results)
	var failures int
	for err := range results {
		if err != nil {
			if !strings.Contains(err.Error(), "already running") {
				t.Fatalf("unexpected error: %v", err)
			}
			failures++
		}
	}
	// Either both ran sequentially (one finished before the other
	// started) or exactly one was rejected — never both failing.
	if failures > 1 {
		t.Fatalf("both duplicate submissions failed")
	}
}

// TestDriverCloseFailsInFlightJobs verifies Close unblocks a waiting map
// phase with an error rather than hanging.
func TestDriverCloseFailsInFlightJobs(t *testing.T) {
	ec := newEngineCluster(t, engineOpts{nodes: 2, slots: 1})
	ec.upload(t, "slow.txt", corpus(map[string]int{"x": 500}), 64)
	done := make(chan error, 1)
	go func() {
		_, err := ec.driver.Run(JobSpec{
			ID: "to-close", App: "test-wordcount", Inputs: []string{"slow.txt"}, User: "tester",
		})
		done <- err
	}()
	// Let the job get going, then close the driver. Depending on timing
	// the job may have already finished, which is also fine.
	ec.driver.Close()
	if err := <-done; err != nil && !strings.Contains(err.Error(), "driver closed") {
		t.Fatalf("err = %v", err)
	}
	// New submissions are refused.
	if _, err := ec.driver.Run(JobSpec{
		ID: "after-close", App: "test-wordcount", Inputs: []string{"slow.txt"}, User: "tester",
	}); err == nil {
		t.Fatal("Run succeeded after Close")
	}
}
