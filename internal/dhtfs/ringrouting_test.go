package dhtfs

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// newAlgTestCluster wires n Services over a ring of the given algorithm.
// It is the non-chord counterpart of newTestCluster, pinning that dhtfs
// works against the Ring interface rather than chord internals.
func newAlgTestCluster(t *testing.T, alg string, n, replicas int) (*transport.Local, []*Service) {
	t.Helper()
	ring, err := hashing.NewAlgorithmRing(alg)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewLocal()
	ringFn := func() hashing.Ring { return ring.Snapshot() }
	services := make([]*Service, 0, n)
	for i := 0; i < n; i++ {
		id := hashing.NodeID(fmt.Sprintf("node-%02d", i))
		if err := ring.AddNode(id); err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(id, net, ringFn, replicas)
		if err != nil {
			t.Fatal(err)
		}
		handler := func(s *Service) transport.Handler {
			return func(ctx context.Context, method string, body []byte) ([]byte, error) {
				out, ok, err := s.Handle(ctx, method, body)
				if !ok {
					return nil, fmt.Errorf("unknown method %s", method)
				}
				return out, err
			}
		}(svc)
		if err := net.Listen(id, handler); err != nil {
			t.Fatal(err)
		}
		services = append(services, svc)
	}
	return net, services
}

// TestRoutedReadOnNonChordRings is the regression test for the routed
// read path's chord assumption: without a finger table, non-chord
// backends must fall back to one direct hop to the owner, never looping
// or erroring. Before the Ring interface this path could only build a
// chord finger table.
func TestRoutedReadOnNonChordRings(t *testing.T) {
	for _, alg := range []string{hashing.AlgorithmJump, hashing.AlgorithmPower, hashing.AlgorithmRendezvous} {
		alg := alg
		t.Run(alg, func(t *testing.T) {
			_, services := newAlgTestCluster(t, alg, 6, 1) // replicas=1: routing must find the one owner
			svc := services[0]
			data := randomData(2048, 17)
			meta, err := svc.Upload(context.Background(), "routed.dat", "u", PermPublic, data, 256)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range meta.BlockKeys {
				got, hops, err := svc.ReadBlockRouted(context.Background(), k)
				if err != nil {
					t.Fatalf("routed read %s: %v", k, err)
				}
				direct, err := svc.ReadBlock(context.Background(), k)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, direct) {
					t.Fatalf("routed read of %s differs from direct", k)
				}
				if hops > 1 {
					t.Fatalf("non-chord routing took %d hops for %s, want at most 1 (direct to owner)", hops, k)
				}
			}

			// The routed ReadFile path (zero-hop off) must reassemble too.
			svc.SetZeroHop(false)
			got, err := svc.ReadFile(context.Background(), "routed.dat", "u")
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("routed ReadFile corrupted data")
			}

			// A missing block still reports not-found, not a routing loop.
			if _, _, err := services[1].ReadBlockRouted(context.Background(), hashing.KeyOfString("never-stored")); !IsNotFound(err) {
				t.Fatalf("missing block err = %v, want not-found", err)
			}
		})
	}
}
