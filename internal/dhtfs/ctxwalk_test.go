package dhtfs

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// TestReplicaWalkStopsOnCancel pins the replica-walk early exit: a read
// whose caller has cancelled must return the context error instead of
// racing down the replica list, where every further probe costs a full
// retry-with-backoff round nobody is waiting for.
func TestReplicaWalkStopsOnCancel(t *testing.T) {
	tc := newTestCluster(t, 4, 3)
	svc := tc.services[tc.ids[0]]
	data := bytes.Repeat([]byte("walk"), 16)
	meta, err := svc.Upload(context.Background(), "walk.dat", "alice", PermPublic, data, 32)
	if err != nil {
		t.Fatal(err)
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.ReadBlock(cctx, meta.BlockKeys[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadBlock under cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := svc.ReadBlockVerified(cctx, meta.BlockKeys[0], meta.BlockSums[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReadBlockVerified under cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := svc.Lookup(cctx, "walk.dat", "alice"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Lookup under cancelled ctx = %v, want context.Canceled", err)
	}

	// A live context still reads normally after the guard.
	got, err := svc.ReadFile(context.Background(), "walk.dat", "alice")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
}
