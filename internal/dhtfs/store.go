// Package dhtfs implements EclipseMR's decentralized DHT file system
// (§II-A of the paper). Files are partitioned into fixed-size blocks that
// are distributed across servers by block hash key; file metadata (name,
// owner, size, partitioning) lives on the server whose hash-key range
// covers the hash of the file name, so there is no central directory
// service like HDFS's NameNode. Metadata and blocks are replicated on the
// owner's predecessor and successor for fault tolerance, and intermediate
// MapReduce results are persisted here (reducer-side) as appendable
// segments so failed jobs can restart from stored partial work.
package dhtfs

import (
	"bytes"
	"crypto/sha1"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"eclipsemr/internal/hashing"
)

// Perm is a minimal access-permission word for file metadata; the paper's
// metadata records "file name, owner, file size" and read access is
// checked at the metadata owner before a job runs.
type Perm uint8

const (
	// PermPrivate allows access only by the file's owner.
	PermPrivate Perm = iota
	// PermPublic allows access by any user.
	PermPublic
)

// Metadata describes one uploaded file.
type Metadata struct {
	Name      string
	Owner     string
	Perm      Perm
	Size      int64
	BlockSize int
	// BlockKeys holds the ring key of every block, in file order. Block i
	// holds bytes [i*BlockSize, min((i+1)*BlockSize, Size)).
	BlockKeys []hashing.Key
	// BlockSums holds the SHA-1 digest of every block; reads verify
	// against it and fall back to a replica on mismatch, so a corrupted
	// copy cannot silently reach an application.
	BlockSums [][sha1.Size]byte
	Created   time.Time
}

// SumBlock computes a block's integrity digest.
func SumBlock(data []byte) [sha1.Size]byte { return sha1.Sum(data) }

// Blocks returns the number of blocks in the file.
func (m Metadata) Blocks() int { return len(m.BlockKeys) }

// CanRead reports whether user may read the file.
func (m Metadata) CanRead(user string) bool {
	return m.Perm == PermPublic || m.Owner == user
}

// ErrNotFound is returned for missing blocks, metadata or segments.
var ErrNotFound = errors.New("dhtfs: not found")

// ErrPermission is returned when the metadata permission check fails.
var ErrPermission = errors.New("dhtfs: permission denied")

// ErrCorrupt is returned when a block fails its integrity check on every
// replica.
var ErrCorrupt = errors.New("dhtfs: block corrupt")

// Split partitions data into blockSize chunks and returns the chunks with
// their deterministic ring keys for the given file name.
func Split(name string, data []byte, blockSize int) ([][]byte, []hashing.Key, error) {
	if blockSize <= 0 {
		return nil, nil, fmt.Errorf("dhtfs: block size must be positive, got %d", blockSize)
	}
	var chunks [][]byte
	var keys []hashing.Key
	for i := 0; i*blockSize < len(data) || (i == 0 && len(data) == 0); i++ {
		end := (i + 1) * blockSize
		if end > len(data) {
			end = len(data)
		}
		chunks = append(chunks, data[i*blockSize:end])
		keys = append(keys, hashing.BlockKey(name, i))
	}
	return chunks, keys, nil
}

// SplitRecords partitions data into chunks of at most blockSize bytes,
// cutting only after a delimiter byte so no record straddles a block
// boundary (the role Hadoop's line-oriented input format plays for HDFS
// blocks). A record longer than blockSize is hard-cut. Returned chunks
// carry the same deterministic per-index ring keys as Split.
func SplitRecords(name string, data []byte, blockSize int, delim byte) ([][]byte, []hashing.Key, error) {
	if blockSize <= 0 {
		return nil, nil, fmt.Errorf("dhtfs: block size must be positive, got %d", blockSize)
	}
	var chunks [][]byte
	var keys []hashing.Key
	for offset, idx := 0, 0; offset < len(data) || idx == 0; idx++ {
		end := offset + blockSize
		if end >= len(data) {
			end = len(data)
		} else if cut := lastIndexByte(data[offset:end], delim); cut >= 0 {
			end = offset + cut + 1
		}
		chunks = append(chunks, data[offset:end])
		keys = append(keys, hashing.BlockKey(name, idx))
		offset = end
	}
	return chunks, keys, nil
}

func lastIndexByte(b []byte, c byte) int {
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// Store is one server's local shard of the DHT file system: data blocks,
// file metadata, and intermediate-result segments. It is safe for
// concurrent use. Blocks are held in memory; the paper's disk costs are
// modeled separately by the simulator.
type Store struct {
	backend blockBackend

	mu       sync.RWMutex
	metas    map[string]Metadata
	segments map[string][]segment // jobID "/" partition -> ordered spills
	segBytes int64
	now      func() time.Time
	// metaPath, when set, persists the metadata map (gob) so a restarted
	// disk-backed node recovers both blocks and the files they belong to.
	metaPath string
}

// segment is one stored intermediate-result spill; Expires implements the
// paper's TTL invalidation of stored intermediate results (zero = no
// TTL). Task/attempt/seq identify the producing map-task attempt so
// re-executions supersede their predecessors instead of double-counting
// (task "" marks a legacy untracked spill).
type segment struct {
	data    []byte
	expires time.Time
	task    string
	attempt int
	seq     int
}

// TaggedSegment is the exported view of one tracked spill, used to merge
// replicated intermediate data across replicas without duplication.
type TaggedSegment struct {
	Task    string
	Attempt int
	Seq     int
	Data    []byte
}

// NewStore returns an empty in-memory shard.
func NewStore() *Store {
	return &Store{
		backend:  newMemBackend(),
		metas:    make(map[string]Metadata),
		segments: make(map[string][]segment),
		now:      time.Now,
	}
}

// NewStoreAt returns a shard whose block payloads and file metadata
// persist under dir; a restarted node recovers both. Intermediate-result
// segments remain in memory — they are transient by design
// (TTL-invalidated, regenerable by re-running maps).
func NewStoreAt(dir string) (*Store, error) {
	backend, err := newDiskBackend(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{
		backend:  backend,
		metas:    make(map[string]Metadata),
		segments: make(map[string][]segment),
		now:      time.Now,
		metaPath: filepath.Join(dir, "metadata.gob"),
	}
	if err := s.loadMetas(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadMetas restores the persisted metadata map, if present.
func (s *Store) loadMetas() error {
	data, err := os.ReadFile(s.metaPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("dhtfs: load metadata: %w", err)
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s.metas); err != nil {
		return fmt.Errorf("dhtfs: corrupt metadata file %s: %w", s.metaPath, err)
	}
	return nil
}

// persistMetasLocked rewrites the metadata file (write-then-rename).
// Caller holds s.mu. The map is small — one entry per file, not per
// block — so a full rewrite per update is cheap and crash-safe.
func (s *Store) persistMetasLocked() {
	if s.metaPath == "" {
		return
	}
	var buf bytes.Buffer
	if gob.NewEncoder(&buf).Encode(s.metas) != nil {
		return // metadata is replicated ring-wide; best effort locally
	}
	tmp := s.metaPath + ".tmp"
	if os.WriteFile(tmp, buf.Bytes(), 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, s.metaPath)
}

// SetClock overrides the TTL time source (tests, simulation).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// PutBlock stores a block, overwriting any previous content. On a
// disk-backed shard an IO failure is reported; the in-memory backend
// never fails.
func (s *Store) PutBlock(k hashing.Key, data []byte) error {
	return s.backend.put(k, data)
}

// GetBlock fetches a block.
func (s *Store) GetBlock(k hashing.Key) ([]byte, error) {
	data, ok, err := s.backend.get(k)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: block %s", ErrNotFound, k)
	}
	return data, nil
}

// HasBlock reports block presence without copying.
func (s *Store) HasBlock(k hashing.Key) bool {
	return s.backend.has(k)
}

// DeleteBlock removes a block, reporting whether it existed.
func (s *Store) DeleteBlock(k hashing.Key) bool {
	_, ok := s.backend.delete(k)
	return ok
}

// BlockKeys lists every block key held locally.
func (s *Store) BlockKeys() []hashing.Key {
	return s.backend.keys()
}

// PutMeta stores file metadata.
func (s *Store) PutMeta(m Metadata) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.metas[m.Name] = m
	s.persistMetasLocked()
}

// GetMeta fetches metadata by file name.
func (s *Store) GetMeta(name string) (Metadata, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.metas[name]
	if !ok {
		return Metadata{}, fmt.Errorf("%w: metadata for %q", ErrNotFound, name)
	}
	return m, nil
}

// DeleteMeta removes metadata, reporting whether it existed.
func (s *Store) DeleteMeta(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.metas[name]
	delete(s.metas, name)
	if ok {
		s.persistMetasLocked()
	}
	return ok
}

// MetaNames lists every file whose metadata is held locally.
func (s *Store) MetaNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.metas))
	for name := range s.metas {
		out = append(out, name)
	}
	return out
}

// segKey builds the segment namespace key.
func segKey(job, partition string) string { return job + "/" + partition }

// SegDisposition reports what AppendTaskSegment did with a spill, so the
// serving layer can log supersedes and ignored stragglers.
type SegDisposition int

const (
	// SegAppended: a new spill was stored.
	SegAppended SegDisposition = iota
	// SegRetransmit: an exact duplicate replaced the stored copy.
	SegRetransmit
	// SegSuperseded: the spill was stored and evicted every spill of the
	// task's earlier attempts.
	SegSuperseded
	// SegStale: a straggler from an already-superseded attempt; ignored.
	SegStale
)

// AppendSegment appends one spill of intermediate results for a job
// partition (the proactive-shuffle write path: mappers push buffered
// results here as they are generated). A positive ttl invalidates the
// spill after that duration, per the paper's application-set TTL on
// stored intermediate results.
func (s *Store) AppendSegment(job, partition string, data []byte, ttl time.Duration) {
	s.AppendTaskSegment(job, partition, "", 0, 0, data, ttl)
}

// AppendTaskSegment is AppendSegment for a spill attributed to one map
// task attempt (seq numbers the task's spills into this partition). The
// attribution makes the write path idempotent under the failure modes a
// lossy network creates:
//
//   - an exact retransmit (same task, attempt, seq) replaces the stored
//     copy instead of appending a duplicate;
//   - a re-executed attempt (higher attempt) supersedes every spill of
//     the task's earlier attempts — a mapper whose success reply was
//     lost and that is re-dispatched cannot double its output;
//   - a stale attempt's stragglers (lower attempt) are ignored.
//
// task "" skips all tracking and appends unconditionally.
func (s *Store) AppendTaskSegment(job, partition, task string, attempt, seq int, data []byte, ttl time.Duration) SegDisposition {
	s.mu.Lock()
	defer s.mu.Unlock()
	seg := segment{data: append([]byte(nil), data...), task: task, attempt: attempt, seq: seq}
	if ttl > 0 {
		seg.expires = s.now().Add(ttl)
	}
	k := segKey(job, partition)
	segs := s.segments[k]
	disp := SegAppended
	if task != "" {
		maxAttempt := -1
		for i := range segs {
			if segs[i].task == task && segs[i].attempt > maxAttempt {
				maxAttempt = segs[i].attempt
			}
		}
		if maxAttempt >= 0 && attempt < maxAttempt {
			return SegStale // straggler from a superseded attempt
		}
		if attempt > maxAttempt && maxAttempt >= 0 {
			live := segs[:0]
			for _, old := range segs {
				if old.task == task {
					s.segBytes -= int64(len(old.data))
					continue
				}
				live = append(live, old)
			}
			segs = live
			disp = SegSuperseded
		}
		for i := range segs {
			if segs[i].task == task && segs[i].attempt == attempt && segs[i].seq == seq {
				s.segBytes += int64(len(seg.data)) - int64(len(segs[i].data))
				segs[i] = seg // idempotent retransmit
				s.segments[k] = segs
				return SegRetransmit
			}
		}
	}
	s.segments[k] = append(segs, seg)
	s.segBytes += int64(len(data))
	return disp
}

// ReadSegments returns every live spill stored for a job partition, in
// arrival order; expired spills are dropped.
func (s *Store) ReadSegments(job, partition string) [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := segKey(job, partition)
	now := s.now()
	segs := s.segments[k]
	live := segs[:0]
	var out [][]byte
	for _, seg := range segs {
		if !seg.expires.IsZero() && now.After(seg.expires) {
			s.segBytes -= int64(len(seg.data))
			continue
		}
		live = append(live, seg)
		out = append(out, append([]byte(nil), seg.data...))
	}
	if len(live) == 0 {
		delete(s.segments, k)
	} else {
		s.segments[k] = live
	}
	return out
}

// ReadTaggedSegments returns every live spill with its task attribution,
// for replica union-merges.
func (s *Store) ReadTaggedSegments(job, partition string) []TaggedSegment {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := segKey(job, partition)
	now := s.now()
	segs := s.segments[k]
	live := segs[:0]
	var out []TaggedSegment
	for _, seg := range segs {
		if !seg.expires.IsZero() && now.After(seg.expires) {
			s.segBytes -= int64(len(seg.data))
			continue
		}
		live = append(live, seg)
		out = append(out, TaggedSegment{
			Task:    seg.task,
			Attempt: seg.attempt,
			Seq:     seg.seq,
			Data:    append([]byte(nil), seg.data...),
		})
	}
	if len(live) == 0 {
		delete(s.segments, k)
	} else {
		s.segments[k] = live
	}
	return out
}

// MergeTaggedSegments unions spills gathered from several replicas into
// one deduplicated, deterministically ordered payload list: per task only
// the newest attempt survives, (task, seq) duplicates collapse to one
// copy, and the result is sorted by (task, seq). Because every spill
// reached at least one replica, the union over the reachable replicas is
// the complete intermediate data even when each individual copy is
// partial.
func MergeTaggedSegments(segs []TaggedSegment) [][]byte {
	maxAttempt := make(map[string]int)
	for _, s := range segs {
		if a, ok := maxAttempt[s.Task]; !ok || s.Attempt > a {
			maxAttempt[s.Task] = s.Attempt
		}
	}
	type key struct {
		task string
		seq  int
	}
	best := make(map[key][]byte)
	order := make([]key, 0, len(segs))
	for _, s := range segs {
		if s.Attempt != maxAttempt[s.Task] {
			continue
		}
		k := key{s.Task, s.Seq}
		if _, dup := best[k]; dup {
			continue // identical retransmit on another replica
		}
		best[k] = s.Data
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].task != order[j].task {
			return order[i].task < order[j].task
		}
		return order[i].seq < order[j].seq
	})
	out := make([][]byte, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}

// DropJobSegments deletes all intermediate data of a job (invoked when a
// job completes or its TTL lapses).
func (s *Store) DropJobSegments(job string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prefix := job + "/"
	for k, segs := range s.segments {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			for _, seg := range segs {
				s.segBytes -= int64(len(seg.data))
			}
			delete(s.segments, k)
		}
	}
}

// sweepExpiredLocked drops every TTL-lapsed segment and its accounting.
// Reads do this lazily per stream they touch; the accounting entry points
// call it so Bytes and Counts never report data a reader could no longer
// observe. Caller holds s.mu.
func (s *Store) sweepExpiredLocked() {
	now := s.now()
	for k, segs := range s.segments {
		live := segs[:0]
		for _, seg := range segs {
			if !seg.expires.IsZero() && now.After(seg.expires) {
				s.segBytes -= int64(len(seg.data))
				continue
			}
			live = append(live, seg)
		}
		if len(live) == 0 {
			delete(s.segments, k)
		} else {
			s.segments[k] = live
		}
	}
}

// Bytes returns the total payload bytes held (blocks + live segments).
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked()
	return s.backend.bytes() + s.segBytes
}

// Counts returns the number of blocks, metadata entries and live segment
// streams held. All three are sampled under one critical section, so the
// triple is a consistent snapshot.
func (s *Store) Counts() (blocks, metas, segments int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sweepExpiredLocked()
	return len(s.backend.keys()), len(s.metas), len(s.segments)
}
