package dhtfs

import (
	"context"
	"fmt"

	"eclipsemr/internal/chord"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// Zero-hop vs classic DHT routing (§II-A): with complete routing tables
// (m set to the number of servers) every block request goes directly to
// its owner — the paper's default for cluster-scale deployments. "If zero
// hop routing is not enabled, it routes the request to another server
// that owns the hash key as in the classic DHT routing algorithm [29]":
// each hop forwards the request to the closest preceding finger until the
// owner answers. The routed path exists for very large or churny rings
// where complete tables are impractical, and for the routing ablation.

type (
	routedGetReq struct {
		Key hashing.Key
		// Hops counts forwards so far; guards against routing loops.
		Hops int
	}
	routedGetResp struct {
		Data []byte
		Hops int
	}
)

// MethodRoutedGet is the hop-by-hop block fetch.
const MethodRoutedGet = "fs.routedGet"

// maxRouteHops bounds forwarding; with consistent finger tables a lookup
// needs O(log n) hops, so anything past this indicates divergent views.
const maxRouteHops = 64

// SetZeroHop selects between direct owner access (true, the default) and
// classic multi-hop DHT routing for block reads.
func (s *Service) SetZeroHop(enabled bool) { s.zeroHopOff = !enabled }

// handleRoutedGet serves one hop of a routed block fetch: answer from the
// local shard if the block is here, otherwise forward to the next hop
// from this node's finger table.
func (s *Service) handleRoutedGet(ctx context.Context, body []byte) ([]byte, error) {
	var req routedGetReq
	if err := transport.Decode(body, &req); err != nil {
		return nil, err
	}
	if data, err := s.store.GetBlock(req.Key); err == nil {
		return transport.Encode(routedGetResp{Data: data, Hops: req.Hops})
	}
	if req.Hops >= maxRouteHops {
		return nil, fmt.Errorf("dhtfs: routed lookup for %s exceeded %d hops", req.Key, maxRouteHops)
	}
	ring := s.ring()
	if owner, err := ring.Owner(req.Key); err == nil && owner == s.self {
		// We own the key but do not hold the block: it does not exist.
		return nil, fmt.Errorf("%w: block %s", ErrNotFound, req.Key)
	}
	next, err := s.nextHop(ring, req.Key)
	if err != nil {
		return nil, err
	}
	var resp routedGetResp
	if err := s.call(ctx, next, MethodRoutedGet, routedGetReq{Key: req.Key, Hops: req.Hops + 1}, &resp); err != nil {
		return nil, err
	}
	return transport.Encode(resp)
}

// nextHop computes this node's forwarding target for key k. On the chord
// backend the target comes from the finger table (rebuilt from the
// current view; rings are small and membership changes rare, so this
// costs microseconds). The other ring algorithms have no positional
// finger geometry — bucket indices and rendezvous scores are not ring
// arcs — so routing degenerates to one direct hop to the key's owner,
// which is still correct multi-hop semantics: the owner either serves the
// block or reports it missing.
func (s *Service) nextHop(ring hashing.Ring, k hashing.Key) (hashing.NodeID, error) {
	cr, ok := ring.(*hashing.ChordRing)
	if !ok {
		next, err := ring.Owner(k)
		if err != nil {
			return "", err
		}
		if next == s.self {
			return "", fmt.Errorf("dhtfs: no forward progress for key %s", k)
		}
		return next, nil
	}
	ft, err := chord.Build(cr, s.self, 64)
	if err != nil {
		return "", err
	}
	next, _ := ft.NextHop(k)
	if next == s.self {
		return "", fmt.Errorf("dhtfs: no forward progress for key %s", k)
	}
	return next, nil
}

// ReadBlockRouted fetches a block via classic DHT routing, returning the
// data and the number of hops taken.
func (s *Service) ReadBlockRouted(ctx context.Context, k hashing.Key) ([]byte, int, error) {
	// Serve locally when possible (hop zero).
	if data, err := s.store.GetBlock(k); err == nil {
		return data, 0, nil
	}
	ring := s.ring()
	if owner, err := ring.Owner(k); err == nil && owner == s.self {
		return nil, 0, fmt.Errorf("%w: block %s", ErrNotFound, k)
	}
	next, err := s.nextHop(ring, k)
	if err != nil {
		return nil, 0, err
	}
	var resp routedGetResp
	if err := s.call(ctx, next, MethodRoutedGet, routedGetReq{Key: k, Hops: 1}, &resp); err != nil {
		return nil, 0, err
	}
	return resp.Data, resp.Hops, nil
}
