package dhtfs

import (
	"context"
	"fmt"
	"testing"
)

// TestListPrefixUnionsAcrossNodes pins the namespace listing the job
// journal relies on: metadata is scattered across the ring by name hash,
// so a prefix listing must union every member's view — sorted, deduped,
// and filtered to the prefix.
func TestListPrefixUnionsAcrossNodes(t *testing.T) {
	tc := newTestCluster(t, 5, 2)
	svc := tc.any()
	var want []string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("_mr/journal/job-%02d", i)
		if _, err := svc.Upload(context.Background(), name, "u", PermPublic, []byte("j"), 64); err != nil {
			t.Fatal(err)
		}
		want = append(want, name)
	}
	if _, err := svc.Upload(context.Background(), "_mr/other/marker", "u", PermPublic, []byte("m"), 64); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Upload(context.Background(), "plain.txt", "u", PermPublic, []byte("p"), 64); err != nil {
		t.Fatal(err)
	}

	for _, id := range tc.ids {
		got, err := tc.services[id].ListPrefix(context.Background(), "_mr/journal/")
		if err != nil {
			t.Fatalf("ListPrefix from %s: %v", id, err)
		}
		if len(got) != len(want) {
			t.Fatalf("ListPrefix from %s = %v, want %v", id, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ListPrefix from %s = %v, want %v", id, got, want)
			}
		}
	}
}

// TestListPrefixSurvivesNodeFailure pins the availability contract: with
// replicated metadata, the union listing stays complete while any replica
// of each name is reachable, and only fails when no member responds.
func TestListPrefixSurvivesNodeFailure(t *testing.T) {
	tc := newTestCluster(t, 5, 3)
	svc := tc.any()
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("_mr/journal/job-%02d", i)
		if _, err := svc.Upload(context.Background(), name, "u", PermPublic, []byte("j"), 64); err != nil {
			t.Fatal(err)
		}
	}
	// One node vanishes without any ring update: the listing degrades to
	// the reachable members, which still jointly hold every replicated
	// name.
	tc.net.Unlisten(tc.ids[1])
	got, err := tc.services[tc.ids[0]].ListPrefix(context.Background(), "_mr/journal/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Fatalf("listing lost names with one node down: %v", got)
	}
}
