package dhtfs

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

// testCluster wires n Services over an in-process network with a shared
// mutable ring.
type testCluster struct {
	mu       sync.Mutex
	ring     *hashing.ChordRing
	net      *transport.Local
	services map[hashing.NodeID]*Service
	ids      []hashing.NodeID
}

func newTestCluster(t *testing.T, n, replicas int) *testCluster {
	t.Helper()
	tc := &testCluster{
		ring:     hashing.NewChordRing(),
		net:      transport.NewLocal(),
		services: make(map[hashing.NodeID]*Service),
	}
	ringFn := func() hashing.Ring {
		tc.mu.Lock()
		defer tc.mu.Unlock()
		return tc.ring.Clone()
	}
	for i := 0; i < n; i++ {
		id := hashing.NodeID(fmt.Sprintf("node-%02d", i))
		if err := tc.ring.AddNode(id); err != nil {
			t.Fatal(err)
		}
		svc, err := NewService(id, tc.net, ringFn, replicas)
		if err != nil {
			t.Fatal(err)
		}
		tc.services[id] = svc
		tc.ids = append(tc.ids, id)
		handler := func(s *Service) transport.Handler {
			return func(ctx context.Context, method string, body []byte) ([]byte, error) {
				out, ok, err := s.Handle(ctx, method, body)
				if !ok {
					return nil, fmt.Errorf("unknown method %s", method)
				}
				return out, err
			}
		}(svc)
		if err := tc.net.Listen(id, handler); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

// fail crashes a node: removes it from the ring and the network.
func (tc *testCluster) fail(id hashing.NodeID) {
	tc.mu.Lock()
	tc.ring.Remove(id)
	tc.mu.Unlock()
	tc.net.Unlisten(id)
	delete(tc.services, id)
}

func (tc *testCluster) any() *Service {
	for _, id := range tc.ids {
		if svc, ok := tc.services[id]; ok {
			return svc
		}
	}
	return nil
}

func randomData(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	rng.Read(data)
	return data
}

func TestSplit(t *testing.T) {
	data := []byte("abcdefghij") // 10 bytes
	chunks, keys, err := Split("f", data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 || len(keys) != 3 {
		t.Fatalf("chunks=%d keys=%d", len(chunks), len(keys))
	}
	if string(chunks[2]) != "ij" {
		t.Fatalf("last chunk = %q", chunks[2])
	}
	for i, k := range keys {
		if k != hashing.BlockKey("f", i) {
			t.Fatalf("key %d mismatch", i)
		}
	}
	// Empty file still yields one (empty) block so metadata has a key.
	chunks, keys, err = Split("e", nil, 4)
	if err != nil || len(chunks) != 1 || len(chunks[0]) != 0 || len(keys) != 1 {
		t.Fatalf("empty split = %d chunks, err %v", len(chunks), err)
	}
	if _, _, err := Split("f", data, 0); err == nil {
		t.Fatal("blockSize 0 accepted")
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	k := hashing.KeyOfString("blk")
	s.PutBlock(k, []byte("data"))
	if !s.HasBlock(k) {
		t.Fatal("HasBlock false")
	}
	got, err := s.GetBlock(k)
	if err != nil || string(got) != "data" {
		t.Fatalf("GetBlock = %q, %v", got, err)
	}
	// Stored copy must be isolated from caller mutation.
	got[0] = 'X'
	again, _ := s.GetBlock(k)
	if string(again) != "data" {
		t.Fatal("stored block aliased to returned slice")
	}
	s.PutBlock(k, []byte("xy")) // overwrite adjusts byte accounting
	if s.Bytes() != 2 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
	if !s.DeleteBlock(k) || s.DeleteBlock(k) {
		t.Fatal("DeleteBlock semantics")
	}
	if s.Bytes() != 0 {
		t.Fatalf("Bytes after delete = %d", s.Bytes())
	}
	if _, err := s.GetBlock(k); !IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreMeta(t *testing.T) {
	s := NewStore()
	m := Metadata{Name: "f", Owner: "alice", Size: 10}
	s.PutMeta(m)
	got, err := s.GetMeta("f")
	if err != nil || got.Owner != "alice" {
		t.Fatalf("GetMeta = %+v, %v", got, err)
	}
	if names := s.MetaNames(); len(names) != 1 || names[0] != "f" {
		t.Fatalf("MetaNames = %v", names)
	}
	if !s.DeleteMeta("f") || s.DeleteMeta("f") {
		t.Fatal("DeleteMeta semantics")
	}
	if _, err := s.GetMeta("f"); !IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestStoreSegments(t *testing.T) {
	s := NewStore()
	s.AppendSegment("job1", "p0", []byte("aa"), 0)
	s.AppendSegment("job1", "p0", []byte("bb"), 0)
	s.AppendSegment("job1", "p1", []byte("cc"), 0)
	s.AppendSegment("job2", "p0", []byte("dd"), 0)
	segs := s.ReadSegments("job1", "p0")
	if len(segs) != 2 || string(segs[0]) != "aa" || string(segs[1]) != "bb" {
		t.Fatalf("segments = %q", segs)
	}
	if len(s.ReadSegments("job1", "missing")) != 0 {
		t.Fatal("missing partition returned data")
	}
	s.DropJobSegments("job1")
	if len(s.ReadSegments("job1", "p0")) != 0 || len(s.ReadSegments("job1", "p1")) != 0 {
		t.Fatal("DropJobSegments left data")
	}
	if len(s.ReadSegments("job2", "p0")) != 1 {
		t.Fatal("DropJobSegments removed other job's data")
	}
	if s.Bytes() != 2 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
}

func TestMetadataCanRead(t *testing.T) {
	priv := Metadata{Owner: "alice", Perm: PermPrivate}
	if !priv.CanRead("alice") || priv.CanRead("bob") {
		t.Fatal("private permission wrong")
	}
	pub := Metadata{Owner: "alice", Perm: PermPublic}
	if !pub.CanRead("bob") {
		t.Fatal("public permission wrong")
	}
}

func TestUploadAndReadFile(t *testing.T) {
	tc := newTestCluster(t, 6, 3)
	svc := tc.any()
	data := randomData(10_000, 1)
	meta, err := svc.Upload(context.Background(), "input.dat", "alice", PermPublic, data, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Blocks() != 10 || meta.Size != 10_000 {
		t.Fatalf("meta = %+v", meta)
	}
	// Read back from a different node.
	other := tc.services[tc.ids[3]]
	got, err := other.ReadFile(context.Background(), "input.dat", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip corruption")
	}
}

func TestBlockPlacementFollowsRing(t *testing.T) {
	tc := newTestCluster(t, 6, 3)
	svc := tc.any()
	data := randomData(8192, 2)
	meta, err := svc.Upload(context.Background(), "placed.dat", "alice", PermPublic, data, 512)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range meta.BlockKeys {
		targets, _ := tc.ring.ReplicaSet(k, 3)
		for _, id := range targets {
			if !tc.services[id].Store().HasBlock(k) {
				t.Fatalf("replica %s missing block %s", id, k)
			}
		}
		// Nodes outside the replica set must not hold the block.
		inSet := map[hashing.NodeID]bool{}
		for _, id := range targets {
			inSet[id] = true
		}
		for id, s := range tc.services {
			if !inSet[id] && s.Store().HasBlock(k) {
				t.Fatalf("non-replica %s holds block %s", id, k)
			}
		}
	}
	// Metadata lives at the file-name owner and its replicas.
	metaTargets, _ := tc.ring.ReplicaSet(hashing.KeyOfString("placed.dat"), 3)
	for _, id := range metaTargets {
		if _, err := tc.services[id].Store().GetMeta("placed.dat"); err != nil {
			t.Fatalf("metadata replica %s missing entry: %v", id, err)
		}
	}
}

func TestLookupPermissionDenied(t *testing.T) {
	tc := newTestCluster(t, 4, 2)
	svc := tc.any()
	if _, err := svc.Upload(context.Background(), "secret.dat", "alice", PermPrivate, []byte("x"), 4); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Lookup(context.Background(), "secret.dat", "alice"); err != nil {
		t.Fatalf("owner denied: %v", err)
	}
	_, err := svc.Lookup(context.Background(), "secret.dat", "eve")
	if err == nil || !IsPermission(err) {
		t.Fatalf("expected permission error, got %v", err)
	}
}

func TestLookupMissingFile(t *testing.T) {
	tc := newTestCluster(t, 4, 2)
	_, err := tc.any().Lookup(context.Background(), "nope.dat", "x")
	if err == nil || !IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadSurvivesSingleFailure(t *testing.T) {
	tc := newTestCluster(t, 6, 3)
	svc := tc.services[tc.ids[0]]
	data := randomData(4096, 3)
	if _, err := svc.Upload(context.Background(), "ft.dat", "alice", PermPublic, data, 256); err != nil {
		t.Fatal(err)
	}
	// Kill a node that holds data (not the reader).
	tc.fail(tc.ids[4])
	got, err := svc.ReadFile(context.Background(), "ft.dat", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after failure")
	}
}

func TestReReplicateRestoresInvariant(t *testing.T) {
	tc := newTestCluster(t, 6, 3)
	svc := tc.services[tc.ids[0]]
	data := randomData(8192, 4)
	meta, err := svc.Upload(context.Background(), "rec.dat", "alice", PermPublic, data, 256)
	if err != nil {
		t.Fatal(err)
	}
	victim := tc.ids[2]
	tc.fail(victim)
	// Every survivor runs re-replication, as the resource manager directs
	// after detecting a failure.
	for _, s := range tc.services {
		if _, err := s.ReReplicate(context.Background()); err != nil {
			t.Fatalf("ReReplicate: %v", err)
		}
	}
	// Invariant: every block again has `replicas` live copies.
	for _, k := range meta.BlockKeys {
		targets, _ := tc.ring.ReplicaSet(k, 3)
		for _, id := range targets {
			if !tc.services[id].Store().HasBlock(k) {
				t.Fatalf("after recovery, replica %s missing block %s", id, k)
			}
		}
	}
	// And a second failure of any single node still leaves data readable.
	tc.fail(tc.ids[5])
	got, err := svc.ReadFile(context.Background(), "rec.dat", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost after second failure")
	}
}

func TestSegmentsPushFetchDrop(t *testing.T) {
	tc := newTestCluster(t, 4, 2)
	a, b := tc.services[tc.ids[0]], tc.services[tc.ids[1]]
	if err := a.PushSegment(context.Background(), tc.ids[1], "job9", "r0", []byte("spill-1"), 0); err != nil {
		t.Fatal(err)
	}
	if err := a.PushSegment(context.Background(), tc.ids[1], "job9", "r0", []byte("spill-2"), 0); err != nil {
		t.Fatal(err)
	}
	segs, err := b.FetchSegments(context.Background(), tc.ids[1], "job9", "r0")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 || string(segs[1]) != "spill-2" {
		t.Fatalf("segments = %q", segs)
	}
	// Fetch across the network too.
	segs, err = a.FetchSegments(context.Background(), tc.ids[1], "job9", "r0")
	if err != nil || len(segs) != 2 {
		t.Fatalf("remote fetch = %d, %v", len(segs), err)
	}
	a.DropJob(context.Background(), "job9")
	segs, _ = a.FetchSegments(context.Background(), tc.ids[1], "job9", "r0")
	if len(segs) != 0 {
		t.Fatal("DropJob left segments")
	}
}

func TestNewServiceValidation(t *testing.T) {
	net := transport.NewLocal()
	if _, err := NewService("a", net, nil, 3); err == nil {
		t.Fatal("nil ring accepted")
	}
	if _, err := NewService("a", net, func() hashing.Ring { return nil }, 0); err == nil {
		t.Fatal("replicas=0 accepted")
	}
}

func TestUploadSmallRingFewerReplicas(t *testing.T) {
	tc := newTestCluster(t, 2, 3) // fewer nodes than replicas
	svc := tc.any()
	data := randomData(1000, 5)
	if _, err := svc.Upload(context.Background(), "small.dat", "a", PermPublic, data, 100); err != nil {
		t.Fatal(err)
	}
	got, err := svc.ReadFile(context.Background(), "small.dat", "a")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read = %d bytes, %v", len(got), err)
	}
}

func TestConcurrentUploadsAndReads(t *testing.T) {
	tc := newTestCluster(t, 5, 2)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			svc := tc.services[tc.ids[i%len(tc.ids)]]
			name := fmt.Sprintf("file-%d", i)
			data := randomData(2048, int64(i))
			if _, err := svc.Upload(context.Background(), name, "u", PermPublic, data, 256); err != nil {
				errs <- err
				return
			}
			got, err := svc.ReadFile(context.Background(), name, "u")
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(got, data) {
				errs <- fmt.Errorf("%s corrupted", name)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestSplitRecords(t *testing.T) {
	data := []byte("aa bb\ncc dd\nee ff\n")
	chunks, keys, err := SplitRecords("f", data, 8, '\n')
	if err != nil {
		t.Fatal(err)
	}
	var total []byte
	for _, c := range chunks {
		if len(c) > 8 {
			t.Fatalf("chunk %q exceeds block size", c)
		}
		if c[len(c)-1] != '\n' && !bytes.HasSuffix(data, c) {
			t.Fatalf("chunk %q not record-aligned", c)
		}
		total = append(total, c...)
	}
	if !bytes.Equal(total, data) {
		t.Fatal("chunks do not reassemble")
	}
	if len(keys) != len(chunks) {
		t.Fatalf("keys=%d chunks=%d", len(keys), len(chunks))
	}
	// A record longer than the block is hard-cut rather than looping.
	long := []byte("abcdefghijklmnop")
	chunks, _, err = SplitRecords("g", long, 4, '\n')
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 4 {
		t.Fatalf("hard-cut chunks = %d", len(chunks))
	}
	// Empty input still yields one block.
	chunks, keys, err = SplitRecords("e", nil, 4, '\n')
	if err != nil || len(chunks) != 1 || len(keys) != 1 {
		t.Fatalf("empty = %d chunks, %v", len(chunks), err)
	}
	if _, _, err := SplitRecords("f", data, 0, '\n'); err == nil {
		t.Fatal("blockSize 0 accepted")
	}
}

func TestUploadRecordsRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 4, 2)
	svc := tc.any()
	var data []byte
	for i := 0; i < 200; i++ {
		data = append(data, []byte(fmt.Sprintf("line number %d with some text\n", i))...)
	}
	meta, err := svc.UploadRecords(context.Background(), "lines.txt", "u", PermPublic, data, 256, '\n')
	if err != nil {
		t.Fatal(err)
	}
	if meta.Blocks() < 2 {
		t.Fatalf("blocks = %d", meta.Blocks())
	}
	got, err := svc.ReadFile(context.Background(), "lines.txt", "u")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestSegmentTTLExpiry(t *testing.T) {
	s := NewStore()
	now := time.Unix(0, 0)
	s.SetClock(func() time.Time { return now })
	s.AppendSegment("j", "p0", []byte("short"), time.Minute)
	s.AppendSegment("j", "p0", []byte("forever"), 0)
	if segs := s.ReadSegments("j", "p0"); len(segs) != 2 {
		t.Fatalf("segments = %d before expiry", len(segs))
	}
	now = now.Add(2 * time.Minute)
	segs := s.ReadSegments("j", "p0")
	if len(segs) != 1 || string(segs[0]) != "forever" {
		t.Fatalf("segments after expiry = %q", segs)
	}
	// Expired bytes are released from the accounting.
	if s.Bytes() != int64(len("forever")) {
		t.Fatalf("bytes = %d", s.Bytes())
	}
	// A partition whose spills all expire disappears entirely.
	s.AppendSegment("j", "p1", []byte("gone"), time.Second)
	now = now.Add(time.Hour)
	if segs := s.ReadSegments("j", "p1"); len(segs) != 0 {
		t.Fatalf("expired partition returned %q", segs)
	}
	if _, _, segCount := s.Counts(); segCount != 1 {
		t.Fatalf("segment streams = %d", segCount)
	}
}

func TestDeleteRemovesBlocksAndMetadata(t *testing.T) {
	tc := newTestCluster(t, 5, 3)
	svc := tc.any()
	data := randomData(4096, 9)
	meta, err := svc.Upload(context.Background(), "del.dat", "alice", PermPublic, data, 512)
	if err != nil {
		t.Fatal(err)
	}
	// A non-owner cannot delete, even with read permission.
	if err := tc.services[tc.ids[1]].Delete(context.Background(), "del.dat", "bob"); !IsPermission(err) {
		t.Fatalf("non-owner delete err = %v", err)
	}
	if err := svc.Delete(context.Background(), "del.dat", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Lookup(context.Background(), "del.dat", "alice"); !IsNotFound(err) {
		t.Fatalf("lookup after delete err = %v", err)
	}
	for id, s := range tc.services {
		for _, k := range meta.BlockKeys {
			if s.Store().HasBlock(k) {
				t.Fatalf("node %s still holds block %s after delete", id, k)
			}
		}
		if _, err := s.Store().GetMeta("del.dat"); !IsNotFound(err) {
			t.Fatalf("node %s still holds metadata", id)
		}
	}
	// Deleting a missing file reports not-found.
	if err := svc.Delete(context.Background(), "ghost.dat", "alice"); !IsNotFound(err) {
		t.Fatalf("delete missing err = %v", err)
	}
}

func TestRoutedReadMatchesDirect(t *testing.T) {
	tc := newTestCluster(t, 8, 1) // replicas=1 so routing must find the one owner
	svc := tc.services[tc.ids[0]]
	data := randomData(2048, 12)
	meta, err := svc.Upload(context.Background(), "routed.dat", "u", PermPublic, data, 256)
	if err != nil {
		t.Fatal(err)
	}
	maxHops := 0
	for _, k := range meta.BlockKeys {
		got, hops, err := svc.ReadBlockRouted(context.Background(), k)
		if err != nil {
			t.Fatalf("routed read %s: %v", k, err)
		}
		direct, err := svc.ReadBlock(context.Background(), k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, direct) {
			t.Fatalf("routed read of %s differs from direct", k)
		}
		if hops > maxHops {
			maxHops = hops
		}
	}
	if maxHops > 8 { // log2(8)=3 plus slack
		t.Fatalf("routing took %d hops on an 8-node ring", maxHops)
	}
	t.Logf("max hops: %d", maxHops)
}

func TestZeroHopToggleRoutesReads(t *testing.T) {
	tc := newTestCluster(t, 6, 1)
	svc := tc.services[tc.ids[0]]
	data := randomData(1024, 13)
	if _, err := svc.Upload(context.Background(), "zh.dat", "u", PermPublic, data, 256); err != nil {
		t.Fatal(err)
	}
	svc.SetZeroHop(false)
	got, err := svc.ReadFile(context.Background(), "zh.dat", "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("routed ReadFile corrupted data")
	}
	svc.SetZeroHop(true)
}

func TestRoutedReadMissingBlock(t *testing.T) {
	tc := newTestCluster(t, 4, 1)
	svc := tc.any()
	if _, _, err := svc.ReadBlockRouted(context.Background(), hashing.KeyOfString("never-stored")); !IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestReadRecoversFromCorruptReplica(t *testing.T) {
	tc := newTestCluster(t, 5, 3)
	svc := tc.any()
	data := randomData(3000, 14)
	meta, err := svc.Upload(context.Background(), "sum.dat", "u", PermPublic, data, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the primary copy of every block (bit-rot on the owner).
	for _, k := range meta.BlockKeys {
		owner, err := tc.ring.Owner(k)
		if err != nil {
			t.Fatal(err)
		}
		store := tc.services[owner].Store()
		blk, err := store.GetBlock(k)
		if err != nil {
			t.Fatal(err)
		}
		blk[0] ^= 0xFF
		store.PutBlock(k, blk)
	}
	got, err := svc.ReadFile(context.Background(), "sum.dat", "u")
	if err != nil {
		t.Fatalf("read with corrupt primaries: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("corrupt data served")
	}
	// Corrupting every replica surfaces ErrCorrupt rather than bad bytes.
	k := meta.BlockKeys[0]
	targets, _ := tc.ring.ReplicaSet(k, 3)
	for _, id := range targets {
		store := tc.services[id].Store()
		blk, _ := store.GetBlock(k)
		garbage := make([]byte, len(blk)) // definitely not the original
		store.PutBlock(k, garbage)
	}
	_, err = svc.ReadFile(context.Background(), "sum.dat", "u")
	if err == nil || !strings.Contains(err.Error(), ErrCorrupt.Error()) {
		t.Fatalf("err = %v", err)
	}
}
