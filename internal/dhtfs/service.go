package dhtfs

import (
	"context"
	"crypto/sha1"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

// Wire message types. All payloads cross the transport gob-encoded so the
// same protocol runs in-process and over TCP.
type (
	putBlockReq struct {
		Key  hashing.Key
		Data []byte
	}
	getBlockReq struct {
		Key hashing.Key
	}
	getBlockResp struct {
		Data []byte
	}
	hasBlockResp struct {
		Has bool
	}
	putMetaReq struct {
		Meta Metadata
	}
	getMetaReq struct {
		Name string
		User string
	}
	getMetaResp struct {
		Meta Metadata
	}
	appendSegReq struct {
		Job       string
		Partition string
		Data      []byte
		TTL       time.Duration
		// Task/Attempt/Seq attribute the spill to one map-task attempt so
		// retried pushes and re-executed attempts stay idempotent (Task ""
		// is an untracked legacy append).
		Task    string
		Attempt int
		Seq     int
	}
	readSegReq struct {
		Job       string
		Partition string
	}
	readSegResp struct {
		Segments [][]byte
	}
	readTaggedSegResp struct {
		Segments []TaggedSegment
	}
	// segBatchHdr heads a raw-frame batch append: the entries describe how
	// the frame payload splits into per-spill byte ranges (see
	// transport.EncodeFrame), so one RPC carries spills for many
	// partitions without gob touching the bulk bytes.
	segBatchHdr struct {
		Job     string
		TTL     time.Duration
		Entries []segBatchPart
	}
	segBatchPart struct {
		Partition string
		Task      string
		Attempt   int
		Seq       int
		Len       int
	}
	// rawSegsHdr heads a raw-frame untagged read reply: Lens splits the
	// payload back into segments.
	rawSegsHdr struct {
		Lens []int
	}
	// rawTaggedHdr heads a raw-frame tagged read reply.
	rawTaggedHdr struct {
		Tags []rawTaggedPart
	}
	rawTaggedPart struct {
		Task    string
		Attempt int
		Seq     int
		Len     int
	}
	dropSegReq struct {
		Job string
	}
	listMetaReq struct {
		Prefix string
	}
	listMetaResp struct {
		Names []string
	}
	deleteBlockReq struct {
		Key hashing.Key
	}
	deleteMetaReq struct {
		Name string
	}
	empty struct{}
)

// Method names mounted by the cluster node dispatcher.
const (
	MethodPutBlock   = "fs.putBlock"
	MethodGetBlock   = "fs.getBlock"
	MethodHasBlock   = "fs.hasBlock"
	MethodPutMeta    = "fs.putMeta"
	MethodGetMeta    = "fs.getMeta"
	MethodAppendSeg  = "fs.appendSegment"
	MethodReadSeg    = "fs.readSegments"
	MethodReadSegTag = "fs.readTaggedSegments"
	// The *Batch/*Raw methods are the shuffle fast path: raw-frame bodies
	// (length-prefixed KV bytes behind a small gob header) instead of gob
	// all the way down. The gob methods above stay mounted for
	// compatibility with older callers.
	MethodAppendSegBatch = "fs.appendSegmentBatch"
	MethodReadSegRaw     = "fs.readSegmentsRaw"
	MethodReadSegTagRaw  = "fs.readTaggedSegmentsRaw"
	MethodDropSeg        = "fs.dropJobSegments"
	MethodDeleteBlock    = "fs.deleteBlock"
	MethodDeleteMeta     = "fs.deleteMeta"
	MethodHasMeta        = "fs.hasMeta"
	MethodListMeta       = "fs.listMeta"
)

// Service is one node's DHT file system endpoint: it serves the fs.*
// methods from its local Store and implements the client-side operations
// (upload, read, re-replication) against the rest of the ring.
type Service struct {
	self     hashing.NodeID
	store    *Store
	net      transport.Network
	ring     func() hashing.Ring
	replicas int
	now      func() time.Time
	// zeroHopOff selects classic multi-hop DHT routing for block reads
	// instead of the paper's default one-hop direct access (§II-A).
	zeroHopOff bool
	reg        *metrics.Registry
	tracer     *trace.Tracer // nil or disabled = no spans
	events     *events.Log   // nil = no events
}

// NewService builds a Service with an in-memory shard. ring supplies the
// current membership view (it changes on joins and failures); replicas is
// the total copy count per object — the paper's predecessor+successor
// scheme is replicas=3.
func NewService(self hashing.NodeID, net transport.Network, ring func() hashing.Ring, replicas int) (*Service, error) {
	return NewServiceWithStore(self, net, ring, replicas, NewStore())
}

// NewServiceWithStore builds a Service over a caller-provided shard
// (e.g. a disk-backed store from NewStoreAt).
func NewServiceWithStore(self hashing.NodeID, net transport.Network, ring func() hashing.Ring, replicas int, store *Store) (*Service, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("dhtfs: replicas must be >= 1, got %d", replicas)
	}
	if ring == nil {
		return nil, errors.New("dhtfs: nil ring source")
	}
	if store == nil {
		return nil, errors.New("dhtfs: nil store")
	}
	return &Service{
		self:     self,
		store:    store,
		net:      net,
		ring:     ring,
		replicas: replicas,
		now:      time.Now,
		reg:      metrics.NewRegistry(),
	}, nil
}

// Store exposes the local shard (for recovery orchestration and tests).
func (s *Service) Store() *Store { return s.store }

// Now returns the service's current time (overridable via SetClock).
func (s *Service) Now() time.Time { return s.now() }

// Metrics exposes the file system's operational counters plus live
// storage gauges.
func (s *Service) Metrics() *metrics.Registry {
	blocks, metas, segs := s.store.Counts()
	s.reg.Gauge("fs.store.blocks").Set(int64(blocks))
	s.reg.Gauge("fs.store.metas").Set(int64(metas))
	s.reg.Gauge("fs.store.segments").Set(int64(segs))
	s.reg.Gauge("fs.store.bytes").Set(s.store.Bytes())
	return s.reg
}

// SetTracer attaches the node's tracer so block IO and lookups record
// spans (nil is fine: spans become no-ops).
func (s *Service) SetTracer(tr *trace.Tracer) { s.tracer = tr }

// SetEvents attaches the node's structured event log so repair actions
// (read failover, re-replication) land in the flight recorder (nil is
// fine: emissions become no-ops).
func (s *Service) SetEvents(l *events.Log) { s.events = l }

// SetClock overrides the metadata timestamp and segment-TTL time source.
func (s *Service) SetClock(now func() time.Time) {
	s.now = now
	s.store.SetClock(now)
}

// Handle serves one inbound fs.* call. The second return value reports
// whether the method belongs to this service.
func (s *Service) Handle(ctx context.Context, method string, body []byte) ([]byte, bool, error) {
	switch method {
	case MethodPutBlock:
		var req putBlockReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		s.reg.Counter("fs.blocks.written").Inc()
		s.reg.Counter("fs.bytes.written").Add(int64(len(req.Data)))
		if err := s.store.PutBlock(req.Key, req.Data); err != nil {
			return nil, true, err
		}
		out, err := transport.Encode(empty{})
		return out, true, err
	case MethodGetBlock:
		var req getBlockReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		data, err := s.store.GetBlock(req.Key)
		if err != nil {
			return nil, true, err
		}
		s.reg.Counter("fs.blocks.read").Inc()
		s.reg.Counter("fs.bytes.read").Add(int64(len(data)))
		out, err := transport.Encode(getBlockResp{Data: data})
		return out, true, err
	case MethodHasBlock:
		var req getBlockReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		out, err := transport.Encode(hasBlockResp{Has: s.store.HasBlock(req.Key)})
		return out, true, err
	case MethodPutMeta:
		var req putMetaReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		s.store.PutMeta(req.Meta)
		out, err := transport.Encode(empty{})
		return out, true, err
	case MethodGetMeta:
		var req getMetaReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		meta, err := s.store.GetMeta(req.Name)
		if err != nil {
			return nil, true, err
		}
		// The paper's read path checks access permission at the metadata
		// owner before revealing partitioning information.
		if !meta.CanRead(req.User) {
			return nil, true, fmt.Errorf("%w: %s by %q", ErrPermission, req.Name, req.User)
		}
		out, err := transport.Encode(getMetaResp{Meta: meta})
		return out, true, err
	case MethodAppendSeg:
		var req appendSegReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		s.reg.Counter("fs.segments.appended").Inc()
		s.reg.Counter("fs.segments.bytes").Add(int64(len(req.Data)))
		disp := s.store.AppendTaskSegment(req.Job, req.Partition, req.Task, req.Attempt, req.Seq, req.Data, req.TTL)
		s.noteSegDisposition(disp, req.Job, req.Task, req.Attempt)
		out, err := transport.Encode(empty{})
		return out, true, err
	case MethodAppendSegBatch:
		var hdr segBatchHdr
		payload, err := transport.DecodeFrame(body, &hdr)
		if err != nil {
			return nil, true, err
		}
		off := 0
		for i, e := range hdr.Entries {
			if e.Len < 0 || e.Len > len(payload)-off {
				return nil, true, fmt.Errorf("dhtfs: batch entry %d overruns payload (%d bytes at offset %d of %d)",
					i, e.Len, off, len(payload))
			}
			data := payload[off : off+e.Len]
			off += e.Len
			s.reg.Counter("fs.segments.appended").Inc()
			s.reg.Counter("fs.segments.bytes").Add(int64(len(data)))
			// AppendTaskSegment copies, so handing it a payload sub-slice
			// is safe.
			disp := s.store.AppendTaskSegment(hdr.Job, e.Partition, e.Task, e.Attempt, e.Seq, data, hdr.TTL)
			s.noteSegDisposition(disp, hdr.Job, e.Task, e.Attempt)
		}
		s.reg.Counter("fs.segments.batches").Inc()
		out, err := transport.Encode(empty{})
		return out, true, err
	case MethodReadSeg:
		var req readSegReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		out, err := transport.Encode(readSegResp{Segments: s.store.ReadSegments(req.Job, req.Partition)})
		return out, true, err
	case MethodReadSegRaw:
		var req readSegReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		segs := s.store.ReadSegments(req.Job, req.Partition)
		hdr := rawSegsHdr{Lens: make([]int, len(segs))}
		for i, seg := range segs {
			hdr.Lens[i] = len(seg)
		}
		out, err := transport.EncodeFrame(hdr, segs...)
		return out, true, err
	case MethodReadSegTagRaw:
		var req readSegReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		tagged := s.store.ReadTaggedSegments(req.Job, req.Partition)
		hdr := rawTaggedHdr{Tags: make([]rawTaggedPart, len(tagged))}
		payload := make([][]byte, len(tagged))
		for i, seg := range tagged {
			hdr.Tags[i] = rawTaggedPart{Task: seg.Task, Attempt: seg.Attempt, Seq: seg.Seq, Len: len(seg.Data)}
			payload[i] = seg.Data
		}
		out, err := transport.EncodeFrame(hdr, payload...)
		return out, true, err
	case MethodReadSegTag:
		var req readSegReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		out, err := transport.Encode(readTaggedSegResp{Segments: s.store.ReadTaggedSegments(req.Job, req.Partition)})
		return out, true, err
	case MethodDropSeg:
		var req dropSegReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		s.store.DropJobSegments(req.Job)
		out, err := transport.Encode(empty{})
		return out, true, err
	case MethodDeleteBlock:
		var req deleteBlockReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		s.store.DeleteBlock(req.Key)
		out, err := transport.Encode(empty{})
		return out, true, err
	case MethodHasMeta:
		var req getMetaReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		_, merr := s.store.GetMeta(req.Name)
		out, err := transport.Encode(hasBlockResp{Has: merr == nil})
		return out, true, err
	case MethodListMeta:
		var req listMetaReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		var names []string
		for _, name := range s.store.MetaNames() {
			if strings.HasPrefix(name, req.Prefix) {
				names = append(names, name)
			}
		}
		out, err := transport.Encode(listMetaResp{Names: names})
		return out, true, err
	case MethodRoutedGet:
		out, err := s.handleRoutedGet(ctx, body)
		return out, true, err
	case MethodDeleteMeta:
		var req deleteMetaReq
		if err := transport.Decode(body, &req); err != nil {
			return nil, true, err
		}
		s.store.DeleteMeta(req.Name)
		out, err := transport.Encode(empty{})
		return out, true, err
	}
	return nil, false, nil
}

// noteSegDisposition records non-trivial spill-append outcomes in the
// flight recorder: a higher attempt evicting a task's earlier spills, or
// a stale straggler being ignored. Plain appends and idempotent
// retransmits are the common case and stay silent.
func (s *Service) noteSegDisposition(disp SegDisposition, job, task string, attempt int) {
	switch disp {
	case SegSuperseded:
		s.events.Emit(events.KindShuffle, "shuffle.supersede", events.F{Job: job, Task: task, Attempt: attempt})
	case SegStale:
		s.events.Emit(events.KindShuffle, "shuffle.stale", events.F{Job: job, Task: task, Attempt: attempt})
	}
}

// call invokes an fs.* method, short-circuiting to the local store when
// the destination is this node (zero-hop fast path).
func (s *Service) call(ctx context.Context, to hashing.NodeID, method string, req, resp any) error {
	body, err := transport.Encode(req)
	if err != nil {
		return err
	}
	var out []byte
	if to == s.self {
		out, _, err = s.Handle(ctx, method, body)
	} else {
		out, err = s.net.Call(ctx, to, method, body)
	}
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return transport.Decode(out, resp)
}

// callRaw invokes an fs.* method whose request body is already encoded
// (gob or raw frame), short-circuiting to the local handler when the
// destination is this node. When resp is non-nil the reply bytes are
// returned through it undecoded, for the caller to frame-decode.
func (s *Service) callRaw(ctx context.Context, to hashing.NodeID, method string, body []byte, resp *[]byte) error {
	var out []byte
	var err error
	if to == s.self {
		out, _, err = s.Handle(ctx, method, body)
	} else {
		out, err = s.net.Call(ctx, to, method, body)
	}
	if err != nil {
		return err
	}
	if resp != nil {
		*resp = out
	}
	return nil
}

// replicaSet returns the nodes that should hold key k under the current
// membership.
func (s *Service) replicaSet(k hashing.Key) ([]hashing.NodeID, error) {
	return s.ring().ReplicaSet(k, s.replicas)
}

// Upload splits a file into blocks, distributes the blocks (and replicas)
// across the ring by hash key, and stores the metadata at the file-name
// owner (and replicas). It returns the stored metadata.
func (s *Service) Upload(ctx context.Context, name, owner string, perm Perm, data []byte, blockSize int) (Metadata, error) {
	chunks, keys, err := Split(name, data, blockSize)
	if err != nil {
		return Metadata{}, err
	}
	return s.storeFile(ctx, name, owner, perm, data, blockSize, chunks, keys)
}

// UploadRecords is Upload with record-aligned block boundaries: blocks are
// cut only after delim so line-oriented map tasks never see a torn record.
func (s *Service) UploadRecords(ctx context.Context, name, owner string, perm Perm, data []byte, blockSize int, delim byte) (Metadata, error) {
	chunks, keys, err := SplitRecords(name, data, blockSize, delim)
	if err != nil {
		return Metadata{}, err
	}
	return s.storeFile(ctx, name, owner, perm, data, blockSize, chunks, keys)
}

// storeFile distributes pre-split chunks and their metadata. A replica
// target that is unreachable (crashed but not yet evicted from the ring)
// is skipped as long as at least one copy lands; re-replication restores
// the invariant once the membership settles.
func (s *Service) storeFile(ctx context.Context, name, owner string, perm Perm, data []byte, blockSize int, chunks [][]byte, keys []hashing.Key) (Metadata, error) {
	putAll := func(ctx context.Context, method string, req interface{}, targets []hashing.NodeID, what string) error {
		stored := 0
		var lastErr error
		for _, t := range targets {
			if err := s.call(ctx, t, method, req, nil); err != nil {
				if errors.Is(err, transport.ErrUnreachable) {
					s.reg.Counter("fs.store.skipped").Inc()
					lastErr = err
					continue
				}
				return fmt.Errorf("dhtfs: store %s on %s: %w", what, t, err)
			}
			stored++
		}
		if stored == 0 {
			return fmt.Errorf("dhtfs: store %s: no replica reachable: %w", what, lastErr)
		}
		return nil
	}
	for i, chunk := range chunks {
		targets, err := s.replicaSet(keys[i])
		if err != nil {
			return Metadata{}, err
		}
		req := putBlockReq{Key: keys[i], Data: chunk}
		bctx, sp := s.tracer.StartSpan(ctx, "fs.write_block")
		t := s.reg.Histogram("fs.write_block_ns").Start()
		err = putAll(bctx, MethodPutBlock, req, targets, fmt.Sprintf("block %d", i))
		t.Stop()
		sp.End()
		if err != nil {
			return Metadata{}, err
		}
	}
	sums := make([][sha1.Size]byte, len(chunks))
	for i, chunk := range chunks {
		sums[i] = SumBlock(chunk)
	}
	meta := Metadata{
		Name:      name,
		Owner:     owner,
		Perm:      perm,
		Size:      int64(len(data)),
		BlockSize: blockSize,
		BlockKeys: keys,
		BlockSums: sums,
		Created:   s.now(),
	}
	targets, err := s.replicaSet(hashing.KeyOfString(name))
	if err != nil {
		return Metadata{}, err
	}
	if err := putAll(ctx, MethodPutMeta, putMetaReq{Meta: meta}, targets, "metadata"); err != nil {
		return Metadata{}, err
	}
	return meta, nil
}

// Lookup fetches a file's metadata from its metadata owner, checking the
// user's read permission there, and falling back to replicas if the owner
// is unreachable.
func (s *Service) Lookup(ctx context.Context, name, user string) (Metadata, error) {
	ctx, sp := s.tracer.StartSpan(ctx, "fs.lookup")
	defer sp.End()
	sp.Annotate("file", name)
	defer s.reg.Histogram("fs.lookup_ns").Start().Stop()
	targets, err := s.replicaSet(hashing.KeyOfString(name))
	if err != nil {
		return Metadata{}, err
	}
	var lastErr error
	for _, t := range targets {
		// A cancelled caller must not keep racing down the replica list;
		// each further probe is a full retry-with-backoff round.
		if ctx.Err() != nil {
			return Metadata{}, fmt.Errorf("dhtfs: lookup %q: %w", name, ctx.Err())
		}
		var resp getMetaResp
		err := s.call(ctx, t, MethodGetMeta, getMetaReq{Name: name, User: user}, &resp)
		if err == nil {
			return resp.Meta, nil
		}
		lastErr = err
		if errors.Is(err, transport.ErrUnreachable) || transport.IsTransient(err) {
			s.reg.Counter("fs.lookup.failover").Inc()
			continue // ask the next replica
		}
		// Application-level failure (missing or forbidden): replicas hold
		// the same answer, so report it immediately.
		return Metadata{}, err
	}
	return Metadata{}, fmt.Errorf("dhtfs: lookup %q: %w", name, lastErr)
}

// ReadBlock fetches one block by key from its owner, falling back to
// replicas if the owner is unreachable or missing the block. With
// zero-hop routing disabled the request instead travels hop by hop
// through finger tables.
func (s *Service) ReadBlock(ctx context.Context, k hashing.Key) ([]byte, error) {
	ctx, sp := s.tracer.StartSpan(ctx, "fs.read_block")
	defer sp.End()
	defer s.reg.Histogram("fs.read_block_ns").Start().Stop()
	if s.zeroHopOff {
		data, _, err := s.ReadBlockRouted(ctx, k)
		return data, err
	}
	targets, err := s.replicaSet(k)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for i, t := range targets {
		// Stop the replica walk as soon as the caller cancels: the
		// remaining probes would each burn a retry-with-backoff round
		// against servers whose answer nobody is waiting for.
		if ctx.Err() != nil {
			return nil, fmt.Errorf("dhtfs: read block %s: %w", k, ctx.Err())
		}
		var resp getBlockResp
		if err := s.call(ctx, t, MethodGetBlock, getBlockReq{Key: k}, &resp); err == nil {
			if i > 0 {
				s.reg.Counter("fs.read.failover").Inc()
				sp.Annotate("failover", string(t))
				s.events.Emit(events.KindFS, "fs.read_failover", events.F{Detail: string(t)})
			}
			return resp.Data, nil
		} else {
			lastErr = err
		}
	}
	return nil, fmt.Errorf("dhtfs: read block %s: %w", k, lastErr)
}

// ReadBlockVerified fetches a block and checks it against the expected
// digest, trying each replica in turn until one passes — a corrupted copy
// on one server is healed by reading its neighbor's replica.
func (s *Service) ReadBlockVerified(ctx context.Context, k hashing.Key, sum [sha1.Size]byte) ([]byte, error) {
	ctx, sp := s.tracer.StartSpan(ctx, "fs.read_block")
	defer sp.End()
	defer s.reg.Histogram("fs.read_block_ns").Start().Stop()
	targets, err := s.replicaSet(k)
	if err != nil {
		return nil, err
	}
	sawCorrupt := false
	var lastErr error
	for i, t := range targets {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("dhtfs: read block %s: %w", k, ctx.Err())
		}
		var resp getBlockResp
		if err := s.call(ctx, t, MethodGetBlock, getBlockReq{Key: k}, &resp); err != nil {
			lastErr = err
			continue
		}
		if SumBlock(resp.Data) != sum {
			sawCorrupt = true
			continue
		}
		if i > 0 {
			s.reg.Counter("fs.read.failover").Inc()
			s.events.Emit(events.KindFS, "fs.read_failover", events.F{Detail: string(t)})
		}
		return resp.Data, nil
	}
	if sawCorrupt {
		return nil, fmt.Errorf("%w: %s on every reachable replica", ErrCorrupt, k)
	}
	return nil, fmt.Errorf("dhtfs: read block %s: %w", k, lastErr)
}

// ReadFile fetches metadata and then all blocks, reassembling the file.
// Blocks are integrity-checked against the metadata digests (files
// uploaded by older stores without digests skip the check).
func (s *Service) ReadFile(ctx context.Context, name, user string) ([]byte, error) {
	meta, err := s.Lookup(ctx, name, user)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, meta.Size)
	for i, k := range meta.BlockKeys {
		var block []byte
		if i < len(meta.BlockSums) {
			block, err = s.ReadBlockVerified(ctx, k, meta.BlockSums[i])
		} else {
			block, err = s.ReadBlock(ctx, k)
		}
		if err != nil {
			return nil, fmt.Errorf("dhtfs: file %q block %d: %w", name, i, err)
		}
		out = append(out, block...)
	}
	if int64(len(out)) != meta.Size {
		return nil, fmt.Errorf("dhtfs: file %q reassembled to %d bytes, metadata says %d",
			name, len(out), meta.Size)
	}
	return out, nil
}

// PushSegment appends intermediate-result data for a job partition on the
// node owning the partition key (the proactive-shuffle write). A positive
// ttl invalidates the data after that duration.
func (s *Service) PushSegment(ctx context.Context, to hashing.NodeID, job, partition string, data []byte, ttl time.Duration) error {
	return s.call(ctx, to, MethodAppendSeg, appendSegReq{Job: job, Partition: partition, Data: data, TTL: ttl}, nil)
}

// SegTag attributes a spill to one map-task attempt (see
// Store.AppendTaskSegment).
type SegTag struct {
	Task    string
	Attempt int
	Seq     int
}

// PushTaggedSegment is PushSegment with task attribution, the idempotent
// write path retried and re-executed mappers must use.
func (s *Service) PushTaggedSegment(ctx context.Context, to hashing.NodeID, job, partition string, tag SegTag, data []byte, ttl time.Duration) error {
	return s.call(ctx, to, MethodAppendSeg, appendSegReq{
		Job: job, Partition: partition, Data: data, TTL: ttl,
		Task: tag.Task, Attempt: tag.Attempt, Seq: tag.Seq,
	}, nil)
}

// SegBatchEntry is one spill in a coalesced batch push: the partition it
// lands in, its task attribution, and the encoded KV bytes.
type SegBatchEntry struct {
	Partition string
	Tag       SegTag
	Data      []byte
}

// PushTaggedSegmentBatch delivers many spills — possibly for different
// partitions — to one node in a single raw-frame RPC. Each entry lands
// with exactly the semantics of PushTaggedSegment (idempotent per
// (task, attempt, seq)), so a retried batch is safe.
func (s *Service) PushTaggedSegmentBatch(ctx context.Context, to hashing.NodeID, job string, entries []SegBatchEntry, ttl time.Duration) error {
	hdr := segBatchHdr{Job: job, TTL: ttl, Entries: make([]segBatchPart, len(entries))}
	payload := make([][]byte, len(entries))
	for i, e := range entries {
		hdr.Entries[i] = segBatchPart{
			Partition: e.Partition,
			Task:      e.Tag.Task, Attempt: e.Tag.Attempt, Seq: e.Tag.Seq,
			Len: len(e.Data),
		}
		payload[i] = e.Data
	}
	body, err := transport.EncodeFrame(hdr, payload...)
	if err != nil {
		return err
	}
	return s.callRaw(ctx, to, MethodAppendSegBatch, body, nil)
}

// splitPayload cuts a raw-frame payload into per-segment slices by
// length, validating each untrusted length against the remaining bytes.
func splitPayload(payload []byte, lens []int) ([][]byte, error) {
	out := make([][]byte, len(lens))
	off := 0
	for i, n := range lens {
		if n < 0 || n > len(payload)-off {
			return nil, fmt.Errorf("dhtfs: segment %d overruns reply payload (%d bytes at offset %d of %d)",
				i, n, off, len(payload))
		}
		out[i] = payload[off : off+n : off+n]
		off += n
	}
	return out, nil
}

// FetchSegments reads all intermediate-result spills for a job partition
// from the given node, over the raw-frame fast path.
func (s *Service) FetchSegments(ctx context.Context, from hashing.NodeID, job, partition string) ([][]byte, error) {
	req, err := transport.Encode(readSegReq{Job: job, Partition: partition})
	if err != nil {
		return nil, err
	}
	var body []byte
	if err := s.callRaw(ctx, from, MethodReadSegRaw, req, &body); err != nil {
		return nil, err
	}
	var hdr rawSegsHdr
	payload, err := transport.DecodeFrame(body, &hdr)
	if err != nil {
		return nil, err
	}
	return splitPayload(payload, hdr.Lens)
}

// FetchTaggedSegments reads all spills with task attribution from the
// given node (the replica union-merge read path), over the raw-frame fast
// path.
func (s *Service) FetchTaggedSegments(ctx context.Context, from hashing.NodeID, job, partition string) ([]TaggedSegment, error) {
	req, err := transport.Encode(readSegReq{Job: job, Partition: partition})
	if err != nil {
		return nil, err
	}
	var body []byte
	if err := s.callRaw(ctx, from, MethodReadSegTagRaw, req, &body); err != nil {
		return nil, err
	}
	var hdr rawTaggedHdr
	payload, err := transport.DecodeFrame(body, &hdr)
	if err != nil {
		return nil, err
	}
	lens := make([]int, len(hdr.Tags))
	for i, tag := range hdr.Tags {
		lens[i] = tag.Len
	}
	segs, err := splitPayload(payload, lens)
	if err != nil {
		return nil, err
	}
	out := make([]TaggedSegment, len(hdr.Tags))
	for i, tag := range hdr.Tags {
		out[i] = TaggedSegment{Task: tag.Task, Attempt: tag.Attempt, Seq: tag.Seq, Data: segs[i]}
	}
	return out, nil
}

// ListPrefix returns the names of all metadata entries with the given
// prefix, unioned across every reachable ring member (metadata is placed
// by file-name hash, so a prefix scan has no single owner). Unreachable
// members are tolerated as long as at least one answers. Sorted, deduped.
func (s *Service) ListPrefix(ctx context.Context, prefix string) ([]string, error) {
	seen := make(map[string]bool)
	reached := 0
	var lastErr error
	for _, id := range s.ring().Members() {
		var resp listMetaResp
		if err := s.call(ctx, id, MethodListMeta, listMetaReq{Prefix: prefix}, &resp); err != nil {
			lastErr = err
			continue
		}
		reached++
		for _, name := range resp.Names {
			seen[name] = true
		}
	}
	if reached == 0 {
		return nil, fmt.Errorf("dhtfs: list %q: no member reachable: %w", prefix, lastErr)
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// DropJob removes a job's intermediate data across the whole ring.
func (s *Service) DropJob(ctx context.Context, job string) {
	for _, id := range s.ring().Members() {
		_ = s.call(ctx, id, MethodDropSeg, dropSegReq{Job: job}, nil) // best effort
	}
}

// Delete removes a file: its blocks and metadata are deleted from every
// replica. Only the file's owner may delete it. Unreachable replicas are
// tolerated (re-replication after their recovery is driven off live
// copies, which no longer exist, so the delete is effective).
func (s *Service) Delete(ctx context.Context, name, user string) error {
	meta, err := s.Lookup(ctx, name, user)
	if err != nil {
		return err
	}
	if meta.Owner != user {
		return fmt.Errorf("%w: delete %s by %q", ErrPermission, name, user)
	}
	for _, k := range meta.BlockKeys {
		targets, err := s.replicaSet(k)
		if err != nil {
			return err
		}
		for _, t := range targets {
			_ = s.call(ctx, t, MethodDeleteBlock, deleteBlockReq{Key: k}, nil) // best effort
		}
	}
	targets, err := s.replicaSet(hashing.KeyOfString(name))
	if err != nil {
		return err
	}
	for _, t := range targets {
		_ = s.call(ctx, t, MethodDeleteMeta, deleteMetaReq{Name: name}, nil) // best effort
	}
	return nil
}

// ReReplicate runs after a membership change: for every block and
// metadata entry held locally, it ensures all current replica-set members
// have a copy, and drops objects this node no longer replicates. It
// returns the number of objects pushed. This is how a predecessor or
// successor "takes over the faulty server" using its replicated data.
func (s *Service) ReReplicate(ctx context.Context) (pushed int, err error) {
	defer func() {
		if pushed > 0 || err != nil {
			detail := fmt.Sprintf("pushed=%d", pushed)
			if err != nil {
				detail += " err=" + err.Error()
			}
			s.events.Emit(events.KindFS, "fs.replicate", events.F{Detail: detail})
		}
	}()
	for _, k := range s.store.BlockKeys() {
		targets, rerr := s.replicaSet(k)
		if rerr != nil {
			return pushed, rerr
		}
		mine := false
		for _, t := range targets {
			if t == s.self {
				mine = true
				continue
			}
			var has hasBlockResp
			if cerr := s.call(ctx, t, MethodHasBlock, getBlockReq{Key: k}, &has); cerr != nil {
				err = cerr
				continue
			}
			if has.Has {
				continue
			}
			data, gerr := s.store.GetBlock(k)
			if gerr != nil {
				continue // raced with deletion
			}
			if cerr := s.call(ctx, t, MethodPutBlock, putBlockReq{Key: k, Data: data}, nil); cerr != nil {
				err = cerr
				continue
			}
			pushed++
		}
		if !mine {
			s.store.DeleteBlock(k)
		}
	}
	for _, name := range s.store.MetaNames() {
		targets, rerr := s.replicaSet(hashing.KeyOfString(name))
		if rerr != nil {
			return pushed, rerr
		}
		meta, gerr := s.store.GetMeta(name)
		if gerr != nil {
			continue
		}
		mine := false
		for _, t := range targets {
			if t == s.self {
				mine = true
				continue
			}
			// Idempotence: only restore missing copies (matching the block
			// path); full-copy updates propagate at write time via Upload.
			var has hasBlockResp
			if cerr := s.call(ctx, t, MethodHasMeta, getMetaReq{Name: name}, &has); cerr != nil {
				err = cerr
				continue
			}
			if has.Has {
				continue
			}
			if cerr := s.call(ctx, t, MethodPutMeta, putMetaReq{Meta: meta}, nil); cerr != nil {
				err = cerr
				continue
			}
			pushed++
		}
		if !mine {
			s.store.DeleteMeta(name)
		}
	}
	return pushed, err
}
