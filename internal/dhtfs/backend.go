package dhtfs

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"eclipsemr/internal/hashing"
)

// blockBackend abstracts where a shard's block payloads live. The default
// memory backend serves tests, examples and simulation; the disk backend
// persists blocks as files so a restarted server still holds its shard —
// the durability the paper relies on when it calls the DHT file system
// "persistent".
type blockBackend interface {
	put(k hashing.Key, data []byte) error
	get(k hashing.Key) ([]byte, bool, error)
	has(k hashing.Key) bool
	delete(k hashing.Key) (int64, bool)
	keys() []hashing.Key
	// bytes returns the payload bytes held.
	bytes() int64
}

// memBackend keeps blocks in process memory.
type memBackend struct {
	mu     sync.RWMutex
	blocks map[hashing.Key][]byte
	total  int64
}

func newMemBackend() *memBackend {
	return &memBackend{blocks: make(map[hashing.Key][]byte)}
}

func (b *memBackend) put(k hashing.Key, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if old, ok := b.blocks[k]; ok {
		b.total -= int64(len(old))
	}
	b.blocks[k] = append([]byte(nil), data...)
	b.total += int64(len(data))
	return nil
}

func (b *memBackend) get(k hashing.Key) ([]byte, bool, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	data, ok := b.blocks[k]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), data...), true, nil
}

func (b *memBackend) has(k hashing.Key) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.blocks[k]
	return ok
}

func (b *memBackend) delete(k hashing.Key) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, ok := b.blocks[k]
	if !ok {
		return 0, false
	}
	delete(b.blocks, k)
	b.total -= int64(len(data))
	return int64(len(data)), true
}

func (b *memBackend) keys() []hashing.Key {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]hashing.Key, 0, len(b.blocks))
	for k := range b.blocks {
		out = append(out, k)
	}
	return out
}

func (b *memBackend) bytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.total
}

// diskBackend persists each block as one file named by its hex key. An
// index of key→size is kept in memory and rebuilt from the directory on
// startup, which is how a restarted node recovers its shard.
type diskBackend struct {
	mu    sync.RWMutex
	dir   string
	sizes map[hashing.Key]int64
	total int64
}

const blockExt = ".blk"

func newDiskBackend(dir string) (*diskBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dhtfs: block dir: %w", err)
	}
	b := &diskBackend{dir: dir, sizes: make(map[hashing.Key]int64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, blockExt) {
			continue
		}
		var raw uint64
		if _, err := fmt.Sscanf(strings.TrimSuffix(name, blockExt), "%016x", &raw); err != nil {
			continue // foreign file; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		b.sizes[hashing.Key(raw)] = info.Size()
		b.total += info.Size()
	}
	return b, nil
}

func (b *diskBackend) path(k hashing.Key) string {
	return filepath.Join(b.dir, k.String()+blockExt)
}

func (b *diskBackend) put(k hashing.Key, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	// Write-then-rename so a crash mid-write never leaves a torn block.
	tmp := b.path(k) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("dhtfs: write block %s: %w", k, err)
	}
	if err := os.Rename(tmp, b.path(k)); err != nil {
		return fmt.Errorf("dhtfs: commit block %s: %w", k, err)
	}
	if old, ok := b.sizes[k]; ok {
		b.total -= old
	}
	b.sizes[k] = int64(len(data))
	b.total += int64(len(data))
	return nil
}

func (b *diskBackend) get(k hashing.Key) ([]byte, bool, error) {
	b.mu.RLock()
	_, ok := b.sizes[k]
	b.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	data, err := os.ReadFile(b.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("dhtfs: read block %s: %w", k, err)
	}
	return data, true, nil
}

func (b *diskBackend) has(k hashing.Key) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	_, ok := b.sizes[k]
	return ok
}

func (b *diskBackend) delete(k hashing.Key) (int64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	size, ok := b.sizes[k]
	if !ok {
		return 0, false
	}
	delete(b.sizes, k)
	b.total -= size
	_ = os.Remove(b.path(k)) // the index is authoritative
	return size, true
}

func (b *diskBackend) keys() []hashing.Key {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]hashing.Key, 0, len(b.sizes))
	for k := range b.sizes {
		out = append(out, k)
	}
	return out
}

func (b *diskBackend) bytes() int64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.total
}
