package dhtfs

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/transport"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStoreAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := hashing.KeyOfString("disk-block")
	if err := s.PutBlock(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if !s.HasBlock(k) {
		t.Fatal("HasBlock false")
	}
	got, err := s.GetBlock(k)
	if err != nil || string(got) != "payload" {
		t.Fatalf("GetBlock = %q, %v", got, err)
	}
	// Overwrite adjusts accounting.
	if err := s.PutBlock(k, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	if s.Bytes() != 2 {
		t.Fatalf("Bytes = %d", s.Bytes())
	}
	if !s.DeleteBlock(k) || s.DeleteBlock(k) {
		t.Fatal("DeleteBlock semantics")
	}
	if _, err := s.GetBlock(k); !IsNotFound(err) {
		t.Fatalf("err = %v", err)
	}
	// No stray files besides the removed block.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("leftover files: %v", entries)
	}
}

func TestDiskStoreRecoversAfterRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewStoreAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]hashing.Key, 5)
	for i := range keys {
		keys[i] = hashing.BlockKey("restart.dat", i)
		if err := s1.PutBlock(keys[i], bytes.Repeat([]byte{byte(i)}, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	// "Restart": a fresh store over the same directory recovers the shard.
	s2, err := NewStoreAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s2.BlockKeys()); got != 5 {
		t.Fatalf("recovered %d blocks", got)
	}
	for i, k := range keys {
		data, err := s2.GetBlock(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 100+i || data[0] != byte(i) {
			t.Fatalf("block %d corrupted after restart", i)
		}
	}
	if s2.Bytes() != 100+101+102+103+104 {
		t.Fatalf("recovered bytes = %d", s2.Bytes())
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz.blk"), []byte("bad name"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewStoreAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.BlockKeys()); got != 0 {
		t.Fatalf("indexed %d foreign files", got)
	}
}

func TestDiskBackedServiceEndToEnd(t *testing.T) {
	dir := t.TempDir()
	store, err := NewStoreAt(filepath.Join(dir, "n0"))
	if err != nil {
		t.Fatal(err)
	}
	ring := hashing.NewChordRing()
	if err := ring.AddNode("solo"); err != nil {
		t.Fatal(err)
	}
	// A single-node service never leaves the process: self-calls
	// short-circuit to the local handler, so no listener is needed.
	svc, err := NewServiceWithStore("solo", transport.NewLocal(),
		func() hashing.Ring { return ring.Clone() }, 1, store)
	if err != nil {
		t.Fatal(err)
	}
	data := randomData(4096, 31)
	if _, err := svc.Upload(context.Background(), "disk.dat", "u", PermPublic, data, 512); err != nil {
		t.Fatal(err)
	}
	got, err := svc.ReadFile(context.Background(), "disk.dat", "u")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("disk-backed round trip: %v", err)
	}
	// Blocks are really on disk.
	entries, err := os.ReadDir(filepath.Join(dir, "n0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 8 {
		t.Fatalf("only %d block files on disk", len(entries))
	}
}

// TestClusterRestartRecoversFiles is the full durability story: a
// disk-backed shard survives a process restart with both blocks and
// metadata intact, so previously uploaded files remain readable.
func TestClusterRestartRecoversFiles(t *testing.T) {
	dir := t.TempDir()
	ring := hashing.NewChordRing()
	if err := ring.AddNode("solo"); err != nil {
		t.Fatal(err)
	}
	ringFn := func() hashing.Ring { return ring.Clone() }
	data := randomData(4096, 41)

	store1, err := NewStoreAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := NewServiceWithStore("solo", transport.NewLocal(), ringFn, 1, store1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc1.Upload(context.Background(), "persist.dat", "u", PermPublic, data, 512); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store + service over the same directory.
	store2, err := NewStoreAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := NewServiceWithStore("solo", transport.NewLocal(), ringFn, 1, store2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc2.ReadFile(context.Background(), "persist.dat", "u")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file corrupted across restart")
	}
	// Deletion persists too.
	if err := svc2.Delete(context.Background(), "persist.dat", "u"); err != nil {
		t.Fatal(err)
	}
	store3, err := NewStoreAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store3.GetMeta("persist.dat"); !IsNotFound(err) {
		t.Fatalf("deleted metadata resurrected: %v", err)
	}
}
