package dhtfs

import (
	"errors"
	"strings"

	"eclipsemr/internal/transport"
)

// IsNotFound reports whether err denotes a missing block, file or
// metadata entry, whether it occurred locally or was relayed from a
// remote node (remote errors cross the wire as strings).
func IsNotFound(err error) bool {
	if errors.Is(err, ErrNotFound) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, ErrNotFound.Error())
}

// IsPermission reports whether err denotes an access-permission failure,
// local or remote.
func IsPermission(err error) bool {
	if errors.Is(err, ErrPermission) {
		return true
	}
	var re *transport.RemoteError
	return errors.As(err, &re) && strings.Contains(re.Msg, ErrPermission.Error())
}
