package dhtfs

import (
	"bytes"
	"context"
	"testing"
	"time"

	"eclipsemr/internal/transport"
)

// TestPushTaggedSegmentBatch drives the coalesced raw-frame push path:
// one RPC carrying spills for several partitions must land each entry
// with PushTaggedSegment semantics, both across the network and through
// the local self short-circuit.
func TestPushTaggedSegmentBatch(t *testing.T) {
	tc := newTestCluster(t, 3, 2)
	a, b := tc.services[tc.ids[0]], tc.services[tc.ids[1]]
	entries := []SegBatchEntry{
		{Partition: "p0000", Tag: SegTag{Task: "m1", Attempt: 0, Seq: 0}, Data: []byte("aaa")},
		{Partition: "p0001", Tag: SegTag{Task: "m1", Attempt: 0, Seq: 0}, Data: []byte("bb")},
		{Partition: "p0000", Tag: SegTag{Task: "m1", Attempt: 0, Seq: 1}, Data: nil},
		{Partition: "p0000", Tag: SegTag{Task: "m2", Attempt: 0, Seq: 0}, Data: []byte("cccc")},
	}
	if err := a.PushTaggedSegmentBatch(context.Background(), tc.ids[1], "jobB", entries, 0); err != nil {
		t.Fatal(err)
	}
	p0 := b.Store().ReadTaggedSegments("jobB", "p0000")
	if len(p0) != 3 {
		t.Fatalf("p0000 segments = %d, want 3", len(p0))
	}
	if string(p0[0].Data) != "aaa" || len(p0[1].Data) != 0 || string(p0[2].Data) != "cccc" {
		t.Fatalf("p0000 payloads = %q %q %q", p0[0].Data, p0[1].Data, p0[2].Data)
	}
	if p0[1].Task != "m1" || p0[1].Seq != 1 {
		t.Fatalf("p0000[1] tag = %+v", p0[1])
	}
	if p1 := b.Store().ReadTaggedSegments("jobB", "p0001"); len(p1) != 1 || string(p1[0].Data) != "bb" {
		t.Fatalf("p0001 = %+v", p1)
	}

	// Self short-circuit: a batch pushed at the sender's own node.
	if err := a.PushTaggedSegmentBatch(context.Background(), tc.ids[0], "jobB",
		[]SegBatchEntry{{Partition: "p0002", Tag: SegTag{Task: "m3"}, Data: []byte("self")}}, 0); err != nil {
		t.Fatal(err)
	}
	if segs := a.Store().ReadSegments("jobB", "p0002"); len(segs) != 1 || string(segs[0]) != "self" {
		t.Fatalf("self batch = %q", segs)
	}
}

// TestBatchRetransmitAndSupersede pins that batch entries keep the exact
// (task, attempt, seq) dedup semantics of the single-spill path.
func TestBatchRetransmitAndSupersede(t *testing.T) {
	tc := newTestCluster(t, 2, 1)
	a := tc.services[tc.ids[0]]
	to := tc.ids[1]
	push := func(attempt int, data string) {
		t.Helper()
		err := a.PushTaggedSegmentBatch(context.Background(), to, "jobD",
			[]SegBatchEntry{{Partition: "p0000", Tag: SegTag{Task: "m1", Attempt: attempt, Seq: 0}, Data: []byte(data)}}, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	push(0, "first")
	push(0, "first") // exact retransmit replaces, not duplicates
	segs, err := a.FetchSegments(context.Background(), to, "jobD", "p0000")
	if err != nil || len(segs) != 1 {
		t.Fatalf("after retransmit: %d segments, %v", len(segs), err)
	}
	push(1, "second") // higher attempt supersedes
	segs, err = a.FetchSegments(context.Background(), to, "jobD", "p0000")
	if err != nil || len(segs) != 1 || string(segs[0]) != "second" {
		t.Fatalf("after supersede: %q, %v", segs, err)
	}
	push(0, "stale") // straggler from a superseded attempt is ignored
	segs, err = a.FetchSegments(context.Background(), to, "jobD", "p0000")
	if err != nil || len(segs) != 1 || string(segs[0]) != "second" {
		t.Fatalf("after straggler: %q, %v", segs, err)
	}
}

// TestBatchMalformedEntryRejected covers the untrusted-length check in
// the batch handler: an entry whose Len overruns the payload must error,
// not panic or write garbage.
func TestBatchMalformedEntryRejected(t *testing.T) {
	tc := newTestCluster(t, 2, 1)
	svc := tc.services[tc.ids[0]]
	body, err := transport.EncodeFrame(segBatchHdr{
		Job:     "jobE",
		Entries: []segBatchPart{{Partition: "p0000", Task: "m1", Len: 99}},
	}, []byte("short"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Handle(context.Background(), MethodAppendSegBatch, body); err == nil {
		t.Fatal("overrunning batch entry accepted")
	}
	if segs := svc.Store().ReadSegments("jobE", "p0000"); len(segs) != 0 {
		t.Fatalf("malformed batch stored %d segments", len(segs))
	}
}

// TestRawTaggedFetchRoundTrip checks the raw-frame read path end to end
// against data written through the gob single-spill path, so both wire
// generations stay interoperable.
func TestRawTaggedFetchRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 2, 1)
	a := tc.services[tc.ids[0]]
	to := tc.ids[1]
	want := [][]byte{[]byte("s0"), {}, bytes.Repeat([]byte{0xab}, 1<<10)}
	for i, data := range want {
		if err := a.PushTaggedSegment(context.Background(), to, "jobF", "p0000",
			SegTag{Task: "m1", Seq: i}, data, 0); err != nil {
			t.Fatal(err)
		}
	}
	tagged, err := a.FetchTaggedSegments(context.Background(), to, "jobF", "p0000")
	if err != nil {
		t.Fatal(err)
	}
	if len(tagged) != len(want) {
		t.Fatalf("tagged = %d, want %d", len(tagged), len(want))
	}
	for i, seg := range tagged {
		if seg.Task != "m1" || seg.Seq != i || !bytes.Equal(seg.Data, want[i]) {
			t.Fatalf("tagged[%d] = %+v", i, seg)
		}
	}
}

// TestStoreAccountingSweepsExpired pins the TTL accounting fix: Bytes
// and Counts must stop reporting expired segments even when no read has
// touched them since the TTL lapsed.
func TestStoreAccountingSweepsExpired(t *testing.T) {
	s := NewStore()
	now := time.Unix(0, 0)
	s.SetClock(func() time.Time { return now })
	s.AppendTaskSegment("j", "p0", "m1", 0, 0, []byte("expiring!!"), time.Minute)
	s.AppendTaskSegment("j", "p1", "m1", 0, 0, []byte("keep"), 0)
	if got := s.Bytes(); got != int64(len("expiring!!")+len("keep")) {
		t.Fatalf("bytes before expiry = %d", got)
	}
	now = now.Add(2 * time.Minute)
	// No read in between: accounting alone must sweep.
	if got := s.Bytes(); got != int64(len("keep")) {
		t.Fatalf("bytes after expiry = %d, want %d", got, len("keep"))
	}
	blocks, metas, segs := s.Counts()
	if blocks != 0 || metas != 0 || segs != 1 {
		t.Fatalf("counts after expiry = %d/%d/%d, want 0/0/1", blocks, metas, segs)
	}
	// The sweep dropped the data, not just the numbers.
	if got := s.ReadSegments("j", "p0"); len(got) != 0 {
		t.Fatalf("expired partition still readable: %q", got)
	}
}
