module eclipsemr

go 1.22
