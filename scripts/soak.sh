#!/bin/sh
# Nightly chaos soak: the full-size (non -short) fault-injection and
# recovery suites under the race detector — elevated drop rates, worker
# and manager crashes, journal adoption, straggler hedging — with the
# verbose log and a schema-checked trace.json kept as CI artifacts.
#
# The chaos layer logs every injected fault as (seed, link, n), so a
# failing night is replayable from soak.log alone: re-run the named test
# with the same seed and the identical schedule fires (EXPERIMENTS.md,
# "Chaos harness").
#
# Usage:
#   scripts/soak.sh [out-dir]       # default out-dir: soak-out
set -eu

cd "$(dirname "$0")/.."

out="${1:-soak-out}"
mkdir -p "$out"
SOAK_DIR="$(cd "$out" && pwd)"

# Arm the flight recorder for every cluster the suites build: a job
# failure or recovery inside any test auto-captures a debug bundle
# (events + metrics + spans + journal + membership) into bundles/, so a
# red night ships the incident state alongside the log. Filenames are
# deterministic per (job, reason) — re-captures overwrite with the
# latest incident, they never pile up.
ECLIPSE_BUNDLE_DIR="$SOAK_DIR/bundles"
export ECLIPSE_BUNDLE_DIR
mkdir -p "$ECLIPSE_BUNDLE_DIR"

# Full-size recovery/chaos/churn suites, verbose and race-enabled.
# -count=1 defeats the test cache: a soak that replays yesterday's
# cached pass soaks nothing. The status file preserves go test's exit
# code through the tee pipe (POSIX sh has no pipefail).
{
	go test -race -count=1 -v -timeout 30m \
		-run 'Chaos|Recovery|Resume|Orphan|Speculative|Suspect|ReReplicate|Churn|Journal|Partition|AttemptStride|ListPrefix|Replicat|Fail' \
		./internal/cluster ./internal/mapreduce ./internal/dhtfs ./internal/transport
	echo $? >"$SOAK_DIR/.status"
} 2>&1 | tee "$SOAK_DIR/soak.log" || true
[ "$(cat "$SOAK_DIR/.status" 2>/dev/null || echo 1)" -eq 0 ]
rm -f "$SOAK_DIR/.status"

# The lint suite itself under the race detector: the lockorder fixpoint,
# the loader's shared maps and the analyzer drivers are all exercised
# concurrently by the golden tests, and a data race in the gate would
# make its verdicts untrustworthy.
go test -race -count=1 ./internal/lint

# Every bundle the recorder captured during the soak — recovery
# captures fire on green nights too — must satisfy the schema
# cmd/bundlecheck enforces; a malformed capture is a bug in the
# recorder, not in whoever opens the bundle later.
if ls "$ECLIPSE_BUNDLE_DIR"/*.json >/dev/null 2>&1; then
	go run ./cmd/bundlecheck "$ECLIPSE_BUNDLE_DIR"/*.json
fi

# A traced engine run for the artifact, re-validated on disk so the
# nightly also notices a broken export path.
BENCH_DIR="$SOAK_DIR" go test -run '^$' -bench 'BenchmarkHarnessTraceOverhead$' -benchtime 1x .
go run ./cmd/tracecheck "$SOAK_DIR/trace.json"

echo "soak: artifacts in $SOAK_DIR"
ls -l "$SOAK_DIR"
