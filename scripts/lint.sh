#!/bin/sh
# Static-analysis gate: the project's eclipse-lint suite (ring-comparison
# safety, no RPCs under node mutexes, constant single-kind metric names,
# simulator determinism, checked I/O-boundary errors) plus a gofmt
# cleanliness check. Findings print as file:line: analyzer: message; see
# EXPERIMENTS.md for the //lint:ignore suppression syntax.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== eclipse-lint ./..."
go run ./cmd/eclipse-lint ./...

echo "lint: OK"
