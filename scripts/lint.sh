#!/bin/sh
# Static-analysis gate: gofmt cleanliness, go vet, and the project's
# eclipse-lint suite (ring-comparison safety, no RPCs under node mutexes,
# acyclic lock order, constant single-kind metric names, simulator
# determinism, checked I/O-boundary errors, ended spans, terminating
# goroutines, inherited contexts). Findings print as
# file:line: analyzer: message; see EXPERIMENTS.md for the //lint:ignore
# suppression syntax.
#
# Extra arguments pass straight through to eclipse-lint, so PR builds can
# gate only the changed packages:
#
#   scripts/lint.sh                      # full tree (main, nightly)
#   scripts/lint.sh -diff origin/main    # packages changed since the ref
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== eclipse-lint $*"
go run ./cmd/eclipse-lint "$@"

echo "lint: OK"
