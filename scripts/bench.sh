#!/bin/sh
# Runs the engine benchmark harness and writes one BENCH_<workload>.json
# per workload (wall time, per-stage p50/p90/p99, cache hit ratio) so
# each PR records a perf point to compare against the previous one.
#
# Usage:
#   scripts/bench.sh [out-dir]      # full size (default out-dir: .)
#   BENCH_SHORT=1 scripts/bench.sh  # CI smoke size, a few seconds
set -eu

cd "$(dirname "$0")/.."

out="${1:-.}"
mkdir -p "$out"
BENCH_DIR="$(cd "$out" && pwd)"
export BENCH_DIR

go test -run '^$' -bench 'BenchmarkHarness(WordCount|KMeans|TraceOverhead|Ring|ChaosBundle)$' -benchtime 1x .

echo "bench: wrote reports to $BENCH_DIR"
ls -l "$BENCH_DIR"/BENCH_*.json "$BENCH_DIR"/trace.json "$BENCH_DIR"/bundle.json
