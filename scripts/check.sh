#!/bin/sh
# Full verification gate: vet + the entire test suite under the race
# detector. The chaos/fault-injection tests in internal/cluster and
# internal/transport run here too, so a green check means the recovery
# paths are race-clean, not just the happy path.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== lint (gofmt + eclipse-lint)"
./scripts/lint.sh

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race "$@" ./...

echo "check: OK"
