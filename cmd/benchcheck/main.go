// Command benchcheck validates a BENCH_wordcount.json (or kmeans) report
// produced by the MapReduce benchmark harness: well-formed JSON, a
// positive wall time with one timing per job, and the shuffle pipeline
// headline fields populated — intermediate bytes actually moved, at
// least one coalesced batch RPC, never more batches than spills, and a
// recorded send p99. CI runs it against the bench-smoke artifact so a
// report that silently lost its shuffle accounting fails the build
// instead of shipping as a perf point.
//
// Usage: benchcheck BENCH_wordcount.json [more.json...]
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"eclipsemr/internal/benchrun"
)

func validate(rep benchrun.Report) error {
	switch rep.Name {
	case "wordcount", "kmeans":
	default:
		return fmt.Errorf("name = %q, want \"wordcount\" or \"kmeans\"", rep.Name)
	}
	if rep.WallMS <= 0 {
		return fmt.Errorf("wall_ms = %v", rep.WallMS)
	}
	if rep.Name == "wordcount" && len(rep.JobMS) != rep.Config.Jobs {
		return fmt.Errorf("job_ms has %d entries for %d jobs", len(rep.JobMS), rep.Config.Jobs)
	}
	if len(rep.JobMS) == 0 {
		return fmt.Errorf("job_ms is empty")
	}
	for i, ms := range rep.JobMS {
		if ms <= 0 {
			return fmt.Errorf("job_ms[%d] = %v", i, ms)
		}
	}
	if rep.BytesShuffled <= 0 {
		return fmt.Errorf("bytes_shuffled = %d, want > 0", rep.BytesShuffled)
	}
	if rep.ShuffleBatches <= 0 {
		return fmt.Errorf("shuffle_batches = %d, want >= 1", rep.ShuffleBatches)
	}
	spills := rep.Counters["mr.shuffle.spills"]
	if spills <= 0 {
		return fmt.Errorf("counters[mr.shuffle.spills] = %d, want > 0", spills)
	}
	if rep.ShuffleBatches > spills {
		return fmt.Errorf("shuffle_batches = %d exceeds spills = %d", rep.ShuffleBatches, spills)
	}
	if rep.ShuffleSendP99MS <= 0 {
		return fmt.Errorf("shuffle_send_p99_ms = %v, want > 0", rep.ShuffleSendP99MS)
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck <BENCH_wordcount.json> [more.json...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("benchcheck: %v", err)
		}
		var rep benchrun.Report
		if err := json.Unmarshal(data, &rep); err != nil {
			log.Fatalf("benchcheck: %s: %v", path, err)
		}
		if err := validate(rep); err != nil {
			log.Fatalf("benchcheck: %s: %v", path, err)
		}
		fmt.Printf("%s: ok (%d batches for %d spills, %d bytes shuffled)\n",
			path, rep.ShuffleBatches, rep.Counters["mr.shuffle.spills"], rep.BytesShuffled)
	}
}
