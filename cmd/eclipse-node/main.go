// Command eclipse-node runs one EclipseMR worker server over TCP. Every
// node serves the DHT file system, the distributed in-memory cache and
// MapReduce tasks; the node started with -bootstrap additionally assumes
// the resource-manager and job-scheduler roles once every peer in the
// hosts file is reachable (later failures are handled by heartbeats and
// election).
//
// The hosts file lists one node per line: "<node-id> <host:port>".
//
// Example 3-node cluster on one machine:
//
//	cat > hosts.txt <<EOF
//	worker-00 127.0.0.1:7001
//	worker-01 127.0.0.1:7002
//	worker-02 127.0.0.1:7003
//	EOF
//	eclipse-node -id worker-00 -hosts hosts.txt &
//	eclipse-node -id worker-01 -hosts hosts.txt &
//	eclipse-node -id worker-02 -hosts hosts.txt -bootstrap
//
// Then use eclipse-cli to upload files and submit jobs.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	_ "eclipsemr/internal/apps" // register the standard applications
	"eclipsemr/internal/cluster"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/nodecmd"
	"eclipsemr/internal/scheduler"
	"eclipsemr/internal/transport"
)

func main() {
	var (
		id        = flag.String("id", "", "this node's ID (must appear in the hosts file)")
		hostsPath = flag.String("hosts", "", "path to the hosts file (\"id host:port\" lines)")
		bootstrap = flag.Bool("bootstrap", false, "assume the resource-manager role once all peers are up")
		slots     = flag.Int("slots", 8, "map task slots (reduce slots match)")
		replicas  = flag.Int("replicas", 3, "file system replication factor")
		cacheMB   = flag.Int64("cache-mb", 256, "in-memory cache per node (MiB)")
		blockKB   = flag.Int("block-kb", 4096, "file system block size (KiB)")
		dataDir   = flag.String("data", "", "persist file system blocks under DIR/<id> (empty = in memory)")
		metricsAt = flag.String("metrics-addr", "", "serve Prometheus /metrics and /debug/pprof on this address (e.g. :9090; empty = off)")
		traceOn   = flag.Bool("trace", false, "record per-job spans (collect with eclipse-cli trace <job-id>)")
		ringAlg   = flag.String("ring", "", "placement ring algorithm: chord (default), chord:<vnodes>, jump, power, rendezvous")
		bundleDir = flag.String("debug-bundle-on-failure", "", "snapshot a cluster-wide debug bundle into DIR when a job this node drives fails (empty = off)")
	)
	flag.Parse()
	if *id == "" || *hostsPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	hosts, err := nodecmd.ReadHosts(*hostsPath)
	if err != nil {
		log.Fatalf("eclipse-node: %v", err)
	}
	if _, ok := hosts[hashing.NodeID(*id)]; !ok {
		log.Fatalf("eclipse-node: id %q not in hosts file", *id)
	}
	// Retry wraps TCP so transient network hiccups are absorbed below the
	// application, and per-RPC latency histograms are recorded per method.
	net := transport.NewRetry(transport.NewTCP(hosts, 30*time.Second), transport.DefaultRetryPolicy())
	defer func() {
		if err := net.Close(); err != nil {
			log.Printf("eclipse-node: closing transport: %v", err)
		}
	}()

	cfg := cluster.Config{
		Replicas:    *replicas,
		MapSlots:    *slots,
		ReduceSlots: *slots,
		CacheBytes:  *cacheMB << 20,
		BlockSize:   *blockKB << 10,
		DataDir:     *dataDir,
		Ring:        *ringAlg,
	}
	node, err := cluster.NewNode(hashing.NodeID(*id), net, cfg)
	if err != nil {
		log.Fatalf("eclipse-node: %v", err)
	}
	node.Tracer().SetEnabled(*traceOn)

	var (
		mu     sync.Mutex
		driver *mapreduce.Driver
	)
	ensureDriver := func() (*mapreduce.Driver, error) {
		mu.Lock()
		defer mu.Unlock()
		if !node.IsManager() {
			return nil, fmt.Errorf("node %s is not the job scheduler (ask the manager)", *id)
		}
		if driver != nil {
			return driver, nil
		}
		sched, err := scheduler.NewLAF(scheduler.DefaultLAFConfig(), node.Ring())
		if err != nil {
			return nil, err
		}
		for _, peer := range node.Ring().Members() {
			sched.AddNode(peer, cfg.MapSlots)
		}
		node.AddMetricsSource(sched.Metrics().Snapshot)
		mgr := node.Manager()
		if mgr != nil {
			mgr.OnChange(func(joined, failed []hashing.NodeID) {
				for _, j := range joined {
					sched.AddNode(j, cfg.MapSlots)
				}
				for _, f := range failed {
					sched.RemoveNode(f)
				}
			})
		}
		driver, err = mapreduce.NewDriver(node.ID, net, node.FS(), sched, node.Ring, cfg.ReduceSlots)
		if err == nil {
			// The manager's driver shares the node tracer and event ring so
			// driver-side spans and lifecycle events land in the same rings
			// that eclipse-cli trace / events collect.
			driver.SetTracer(node.Tracer())
			driver.SetEvents(node.Events())
			node.AddMetricsSource(driver.Metrics().Snapshot)
			if dir := *bundleDir; dir != "" {
				driver.SetFlightRecorder(func(job, reason string) {
					if path, err := node.WriteBundleFile(context.Background(), dir, job, reason); err != nil {
						log.Printf("eclipse-node: debug bundle capture (%s, %s): %v", job, reason, err)
					} else {
						log.Printf("eclipse-node: captured debug bundle %s", path)
					}
				})
			}
		}
		return driver, err
	}
	node.SetExtraHandler(nodecmd.ClientHandler(node, ensureDriver))
	node.AddMetricsSource(net.NetMetrics().Snapshot)

	if *metricsAt != "" {
		addr, stopMetrics, err := nodecmd.ServeMetrics(*metricsAt, func() metrics.Snapshot {
			return node.MetricsSnapshot()
		}, node.Health)
		if err != nil {
			log.Fatalf("eclipse-node: metrics endpoint: %v", err)
		}
		defer stopMetrics()
		log.Printf("eclipse-node %s metrics on http://%s/metrics (healthz, readyz, pprof on /debug/pprof/)", *id, addr)
	}

	if err := node.Start(); err != nil {
		log.Fatalf("eclipse-node: %v", err)
	}
	log.Printf("eclipse-node %s listening on %s (%d peers)", *id, hosts[hashing.NodeID(*id)], len(hosts))

	if *bootstrap {
		//lint:ignore goroleak one-shot bootstrap: returns after WaitForPeers resolves or log.Fatalf kills the process
		go func() {
			ring, err := nodecmd.WaitForPeers(net, hosts, hashing.NodeID(*id), 2*time.Minute)
			if err != nil {
				log.Fatalf("eclipse-node: bootstrap: %v", err)
			}
			node.BecomeManagerWith(ring, 1)
			log.Printf("eclipse-node %s became resource manager (%d members)", *id, ring.Len())
		}()
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Printf("eclipse-node %s shutting down", *id)
	node.Close()
}
