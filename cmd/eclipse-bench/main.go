// Command eclipse-bench regenerates every table and figure from the
// evaluation section (§III) of "EclipseMR: Distributed and Parallel Task
// Processing with Consistent Hashing" (CLUSTER 2017) on the calibrated
// discrete-event model, printing the same rows and series the paper
// plots. Runs are deterministic.
//
// Usage:
//
//	eclipse-bench            # all figures
//	eclipse-bench -fig 7     # one figure (5, 6a, 6b, 7, 8, 9, 10)
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"eclipsemr/internal/simcluster"
)

// csvDir, when set by -csv, receives one CSV file per figure alongside
// the printed tables.
var csvDir string

// writeCSV stores one figure's series; a missing -csv flag makes it a
// no-op.
func writeCSV(name string, header []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: all, 5, 6a, 6b, 7, 8, 9, 10")
	flag.StringVar(&csvDir, "csv", "", "also write one CSV file per figure into this directory")
	flag.Parse()

	runners := []struct {
		name string
		fn   func() error
	}{
		{"5", fig5}, {"6a", fig6a}, {"6b", fig6b}, {"7", fig7},
		{"8", fig8}, {"9", fig9}, {"10", fig10},
	}
	ran := false
	for _, r := range runners {
		if *fig != "all" && *fig != r.name {
			continue
		}
		ran = true
		if err := r.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "eclipse-bench: figure %s: %v\n", r.name, err)
			os.Exit(1)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "eclipse-bench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func header(title string) {
	fmt.Printf("\n%s\n", title)
	for range title {
		fmt.Print("-")
	}
	fmt.Println()
}

func fig5() error {
	a, b, err := simcluster.Fig5(nil)
	if err != nil {
		return err
	}
	header("Figure 5(a) — AVG IO throughput (bytes / map-task exec time), MB/s")
	fmt.Printf("%8s %14s %14s\n", "# nodes", "DHT FS", "HDFS")
	for _, r := range a {
		fmt.Printf("%8d %14.0f %14.0f\n", r.Nodes, r.DHTMBps, r.HDFSMBps)
	}
	header("Figure 5(b) — AVG IO throughput (bytes / job exec time), MB/s")
	fmt.Printf("%8s %14s %14s\n", "# nodes", "DHT FS", "HDFS")
	for _, r := range b {
		fmt.Printf("%8d %14.0f %14.0f\n", r.Nodes, r.DHTMBps, r.HDFSMBps)
	}
	var rowsA, rowsB [][]string
	for i := range a {
		rowsA = append(rowsA, []string{strconv.Itoa(a[i].Nodes), f2s(a[i].DHTMBps), f2s(a[i].HDFSMBps)})
		rowsB = append(rowsB, []string{strconv.Itoa(b[i].Nodes), f2s(b[i].DHTMBps), f2s(b[i].HDFSMBps)})
	}
	if err := writeCSV("fig5a", []string{"nodes", "dht_mbps", "hdfs_mbps"}, rowsA); err != nil {
		return err
	}
	return writeCSV("fig5b", []string{"nodes", "dht_mbps", "hdfs_mbps"}, rowsB)
}

func fig6a() error {
	rows, err := simcluster.Fig6a()
	if err != nil {
		return err
	}
	header("Figure 6(a) — non-iterative job execution time (s), LAF vs Delay")
	fmt.Printf("%-16s %10s %10s\n", "application", "LAF", "Delay")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-16s %10.0f %10.0f\n", r.App, r.LAFSec, r.DelaySec)
		csvRows = append(csvRows, []string{r.App, f2s(r.LAFSec), f2s(r.DelaySec)})
	}
	return writeCSV("fig6a", []string{"app", "laf_s", "delay_s"}, csvRows)
}

func fig6b() error {
	rows, err := simcluster.Fig6b()
	if err != nil {
		return err
	}
	header("Figure 6(b) — iterative job execution time (s), 5 iterations")
	fmt.Printf("%-10s %8s %12s %8s %12s\n", "app", "LAF", "LAF+oCache", "Delay", "Delay+oCache")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-10s %8.0f %12.0f %8.0f %12.0f\n",
			r.App, r.LAFSec, r.LAFOCacheSec, r.DelaySec, r.DelayOCacheSec)
		csvRows = append(csvRows, []string{r.App, f2s(r.LAFSec), f2s(r.LAFOCacheSec), f2s(r.DelaySec), f2s(r.DelayOCacheSec)})
	}
	return writeCSV("fig6b", []string{"app", "laf_s", "laf_ocache_s", "delay_s", "delay_ocache_s"}, csvRows)
}

func fig7() error {
	rows, err := simcluster.Fig7(nil)
	if err != nil {
		return err
	}
	header("Figure 7 — skewed grep workload: (a) exec time, (b) cache hit ratio")
	fmt.Printf("%-12s %10s %10s %10s %10s\n", "policy", "cache GB", "time (s)", "hit %", "load σ")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-12s %10.1f %10.0f %10.1f %10.1f\n",
			r.Policy, r.CacheGB, r.ExecSec, 100*r.HitRatio, r.LoadStdDev)
		csvRows = append(csvRows, []string{r.Policy, f2s(r.CacheGB), f2s(r.ExecSec), f2s(100 * r.HitRatio), f2s(r.LoadStdDev)})
	}
	return writeCSV("fig7", []string{"policy", "cache_gb", "exec_s", "hit_pct", "load_stddev"}, csvRows)
}

func fig8() error {
	rows, err := simcluster.Fig8(nil)
	if err != nil {
		return err
	}
	header("Figure 8 — 7 concurrent jobs, execution time (s) per cache size")
	fmt.Printf("%-14s %8s %10s %10s %10s\n", "application", "policy", "1 GB", "4 GB", "8 GB")
	type key struct {
		app, pol string
	}
	times := map[key]map[int]float64{}
	var order []key
	for _, r := range rows {
		k := key{r.App, r.Policy}
		if times[k] == nil {
			times[k] = map[int]float64{}
			order = append(order, k)
		}
		times[k][r.CacheGB] = r.ExecSec
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].app != order[j].app {
			return order[i].app < order[j].app
		}
		return order[i].pol < order[j].pol
	})
	var csvRows [][]string
	for _, k := range order {
		fmt.Printf("%-14s %8s %10.0f %10.0f %10.0f\n",
			k.app, k.pol, times[k][1], times[k][4], times[k][8])
		csvRows = append(csvRows, []string{k.app, k.pol, f2s(times[k][1]), f2s(times[k][4]), f2s(times[k][8])})
	}
	return writeCSV("fig8", []string{"app", "policy", "cache1gb_s", "cache4gb_s", "cache8gb_s"}, csvRows)
}

func fig9() error {
	rows, err := simcluster.Fig9()
	if err != nil {
		return err
	}
	header("Figure 9 — execution time vs Hadoop and Spark (s, and normalized)")
	fmt.Printf("%-16s %10s %10s %10s   %s\n", "application", "EclipseMR", "Spark", "Hadoop", "normalized (slowest = 1.0)")
	var csvRows [][]string
	for _, r := range rows {
		slowest := r.EclipseSec
		if r.SparkSec > slowest {
			slowest = r.SparkSec
		}
		if r.HadoopSec > slowest {
			slowest = r.HadoopSec
		}
		hadoop := fmt.Sprintf("%10.0f", r.HadoopSec)
		hn := fmt.Sprintf("%.2f", r.HadoopSec/slowest)
		if r.SkipHadoop {
			hadoop, hn = "   omitted", "-" // an order of magnitude slower, as in the paper
		}
		fmt.Printf("%-16s %10.0f %10.0f %s   E=%.2f S=%.2f H=%s\n",
			r.App, r.EclipseSec, r.SparkSec, hadoop,
			r.EclipseSec/slowest, r.SparkSec/slowest, hn)
		csvRows = append(csvRows, []string{r.App, f2s(r.EclipseSec), f2s(r.SparkSec), f2s(r.HadoopSec)})
	}
	return writeCSV("fig9", []string{"app", "eclipse_s", "spark_s", "hadoop_s"}, csvRows)
}

func fig10() error {
	figs, err := simcluster.Fig10()
	if err != nil {
		return err
	}
	var csvRows [][]string
	for _, app := range []string{"kmeans", "logreg", "pagerank"} {
		rows := figs[app]
		header(fmt.Sprintf("Figure 10 — per-iteration time (s): %s", app))
		fmt.Printf("%10s %12s %12s\n", "iteration", "EclipseMR", "Spark")
		for _, r := range rows {
			fmt.Printf("%10d %12.0f %12.0f\n", r.Iteration, r.EclipseSec, r.SparkSec)
			csvRows = append(csvRows, []string{app, strconv.Itoa(r.Iteration), f2s(r.EclipseSec), f2s(r.SparkSec)})
		}
	}
	return writeCSV("fig10", []string{"app", "iteration", "eclipse_s", "spark_s"}, csvRows)
}
