// Command tracecheck validates a Chrome trace-event JSON file produced
// by eclipse-cli trace -o or the bench harness: well-formed JSON, the
// fields Perfetto requires, monotone timestamps and parents finishing
// no earlier than their children. CI runs it against the traced bench
// artifact so a malformed export fails the build, not the person who
// later tries to load it.
//
// Usage: tracecheck trace.json [more.json...]
package main

import (
	"fmt"
	"log"
	"os"

	"eclipsemr/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json> [more.json...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("tracecheck: %v", err)
		}
		if err := trace.ValidateChrome(data); err != nil {
			log.Fatalf("tracecheck: %s: %v", path, err)
		}
		fmt.Printf("%s: ok (%d bytes)\n", path, len(data))
	}
}
