// Command bundlecheck validates a debug bundle produced by the flight
// recorder, `eclipse-cli debug bundle`, or the simulator's capture hook:
// well-formed JSON, every section present (events, metrics, spans,
// journal, membership), a known schema version, and the event timeline
// in canonical merged order. CI runs it against auto-captured bundles so
// a malformed capture fails the build, not the person who later opens it.
//
// Usage: bundlecheck bundle.json [more.json...]
package main

import (
	"fmt"
	"log"
	"os"

	"eclipsemr/internal/bundle"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: bundlecheck <bundle.json> [more.json...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("bundlecheck: %v", err)
		}
		if err := bundle.Validate(data); err != nil {
			log.Fatalf("bundlecheck: %s: %v", path, err)
		}
		b, err := bundle.Decode(data)
		if err != nil {
			log.Fatalf("bundlecheck: %s: %v", path, err)
		}
		fmt.Printf("%s: ok (reason %q, %d events, %d metric nodes, %d spans, %d journal entries, %d members)\n",
			path, b.Reason, len(b.Events), len(b.Metrics), len(b.Spans), len(b.Journal), len(b.Membership.Members))
	}
}
