// Command ringcheck validates a BENCH_ring.json report produced by the
// ring benchmark harness: well-formed JSON, every -ring backend present,
// at least three member counts per backend, and each point carrying a
// positive lookup timing plus join/leave churn fractions in [0, 1]. CI
// runs it against the bench-smoke artifact so a silently empty or
// malformed report fails the build instead of shipping as a perf point.
//
// Usage: ringcheck BENCH_ring.json [more.json...]
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"eclipsemr/internal/benchrun"
	"eclipsemr/internal/hashing"
)

func validate(rep benchrun.RingReport) error {
	if rep.Name != "ring" {
		return fmt.Errorf("name = %q, want \"ring\"", rep.Name)
	}
	byAlg := make(map[string]benchrun.RingBackendReport, len(rep.Backends))
	for _, back := range rep.Backends {
		byAlg[back.Algorithm] = back
	}
	for _, alg := range hashing.Algorithms() {
		back, ok := byAlg[alg]
		if !ok {
			return fmt.Errorf("backend %q missing", alg)
		}
		if len(back.Points) < 3 {
			return fmt.Errorf("backend %q has %d points, want >= 3 member counts", alg, len(back.Points))
		}
		prev := 0
		for _, pt := range back.Points {
			if pt.Nodes <= prev {
				return fmt.Errorf("backend %q: member counts not ascending at %d", alg, pt.Nodes)
			}
			prev = pt.Nodes
			if pt.LookupNS <= 0 {
				return fmt.Errorf("backend %q/%d: lookup_ns = %v", alg, pt.Nodes, pt.LookupNS)
			}
			for name, frac := range map[string]float64{
				"join_remapped_frac":  pt.JoinRemappedFrac,
				"leave_remapped_frac": pt.LeaveRemappedFrac,
			} {
				if frac < 0 || frac > 1 {
					return fmt.Errorf("backend %q/%d: %s = %v", alg, pt.Nodes, name, frac)
				}
			}
		}
	}
	return nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: ringcheck <BENCH_ring.json> [more.json...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("ringcheck: %v", err)
		}
		var rep benchrun.RingReport
		if err := json.Unmarshal(data, &rep); err != nil {
			log.Fatalf("ringcheck: %s: %v", path, err)
		}
		if err := validate(rep); err != nil {
			log.Fatalf("ringcheck: %s: %v", path, err)
		}
		fmt.Printf("%s: ok (%d backends)\n", path, len(rep.Backends))
	}
}
