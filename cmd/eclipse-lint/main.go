// Command eclipse-lint runs the project's static-analysis suite (package
// internal/lint) over the module: ring-comparison safety, no RPCs under
// node mutexes, an acyclic lock-order graph, constant single-kind metric
// names, simulator determinism, checked I/O-boundary errors, ended spans,
// terminating goroutines and inherited contexts.
//
// Usage:
//
//	eclipse-lint [-only name,name] [-diff ref] [pattern ...]
//
// Patterns are package directories or dir/... recursive patterns,
// relative to the module root; the default is ./... . With -diff, the
// patterns are replaced by the packages holding files changed since the
// given git ref (as PR builds do, keeping the gate fast); module-wide
// analyzers still see whole packages, and main/nightly builds run the
// full tree. Findings print as
//
//	file:line: analyzer: message
//
// and the exit status is 1 when there are findings, 2 on load errors.
// Suppress an individual finding with a trailing or preceding comment:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"eclipsemr/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("eclipse-lint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	diff := fs.String("diff", "", "lint only packages with files changed since this git ref")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: eclipse-lint [-only name,name] [-diff ref] [pattern ...]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.Analyzers()
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "eclipse-lint: unknown analyzer %q (have %s)\n",
					name, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclipse-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclipse-lint:", err)
		return 2
	}
	patterns := fs.Args()
	if *diff != "" {
		if len(patterns) > 0 {
			fmt.Fprintln(os.Stderr, "eclipse-lint: -diff replaces the pattern arguments; pass one or the other")
			return 2
		}
		patterns, err = changedPackages(loader.Root, *diff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eclipse-lint:", err)
			return 2
		}
		if len(patterns) == 0 {
			fmt.Fprintf(os.Stderr, "eclipse-lint: no Go packages changed since %s\n", *diff)
			return 0
		}
	}
	unit, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclipse-lint:", err)
		return 2
	}
	findings := lint.Run(unit, analyzers)
	for _, f := range findings {
		fmt.Println(f.Render(cwd))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "eclipse-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// changedPackages lists the module-relative package directories holding
// .go files changed since ref, per git diff. Deleted files still name
// their directory — the remaining files must keep passing — but a
// directory whose package vanished entirely is dropped, as is testdata
// (golden inputs violate analyzers on purpose).
func changedPackages(root, ref string) ([]string, error) {
	cmd := exec.Command("git", "diff", "--name-only", ref, "--", "*.go")
	cmd.Dir = root
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff %s: %s", ref, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff %s: %w", ref, err)
	}
	dirs := make(map[string]bool)
	for _, file := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if file == "" || strings.Contains(file, "testdata"+string(filepath.Separator)) ||
			strings.Contains(file, "/testdata/") {
			continue
		}
		dir := filepath.Dir(file)
		// The package must still exist with at least one .go file.
		matches, _ := filepath.Glob(filepath.Join(root, dir, "*.go"))
		if len(matches) == 0 {
			continue
		}
		dirs[dir] = true
	}
	var pkgs []string
	for d := range dirs {
		pkgs = append(pkgs, d)
	}
	sort.Strings(pkgs)
	return pkgs, nil
}
