// Command eclipse-lint runs the project's static-analysis suite (package
// internal/lint) over the module: ring-comparison safety, no RPCs under
// node mutexes, constant single-kind metric names, simulator determinism
// and checked I/O-boundary errors.
//
// Usage:
//
//	eclipse-lint [-only name,name] [pattern ...]
//
// Patterns are package directories or dir/... recursive patterns,
// relative to the module root; the default is ./... . Findings print as
//
//	file:line: analyzer: message
//
// and the exit status is 1 when there are findings, 2 on load errors.
// Suppress an individual finding with a trailing or preceding comment:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eclipsemr/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("eclipse-lint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: eclipse-lint [-only name,name] [pattern ...]\n\nanalyzers:\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(fs.Output(), "  %-11s %s\n", a.Name, a.Doc)
		}
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.Analyzers()
	if *only != "" {
		byName := make(map[string]*lint.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "eclipse-lint: unknown analyzer %q (have %s)\n",
					name, strings.Join(lint.AnalyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclipse-lint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclipse-lint:", err)
		return 2
	}
	unit, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eclipse-lint:", err)
		return 2
	}
	findings := lint.Run(unit, analyzers)
	for _, f := range findings {
		fmt.Println(f.Render(cwd))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "eclipse-lint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
