package main

import (
	"fmt"
	"io"
	"sort"
	"time"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
)

// sortedIDs returns the hosts-file node IDs in sorted order. Every
// cluster-wide iteration in the CLI goes through this so output (tables,
// error lines, collection order) is stable between invocations — map
// iteration order would make -watch refreshes jitter.
func sortedIDs(hosts map[hashing.NodeID]string) []hashing.NodeID {
	ids := make([]hashing.NodeID, 0, len(hosts))
	for id := range hosts {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// renderStats writes the merged cluster snapshot as the stats table:
// counters and gauges sorted by metric name, then latency-histogram
// quantiles sorted by name. Rendering the same snapshot twice produces
// identical bytes.
func renderStats(w io.Writer, total metrics.Snapshot, reached, hosts int) {
	fmt.Fprintf(w, "cluster: %d/%d nodes reporting\n\n", reached, hosts)
	names := make([]string, 0, len(total.Values))
	for n := range total.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "%-32s %d\n", n, total.Values[n])
	}
	if len(total.Hists) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%-32s %8s %10s %10s %10s %10s\n", "latency", "count", "p50", "p90", "p99", "mean")
	names = names[:0]
	for n := range total.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := total.Hists[n]
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "%-32s %8d %10s %10s %10s %10s\n", n, h.Count(),
			fmtNs(h.Quantile(0.50)), fmtNs(h.Quantile(0.90)), fmtNs(h.Quantile(0.99)),
			fmtNs(int64(h.Mean())))
	}
}

// fmtNs renders a nanosecond latency with duration units.
func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
