package main

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"eclipsemr/internal/hashing"
	"eclipsemr/internal/metrics"
)

// TestSortedIDs pins the iteration order every cluster-wide CLI loop
// uses: sorted by node ID regardless of map insertion order.
func TestSortedIDs(t *testing.T) {
	hosts := map[hashing.NodeID]string{
		"node-02": "b:1", "node-00": "a:1", "node-03": "d:1", "node-01": "c:1",
	}
	got := sortedIDs(hosts)
	want := []hashing.NodeID{"node-00", "node-01", "node-02", "node-03"}
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ids[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestRenderStatsStable is the regression test for the stats table: the
// same snapshot must render to identical bytes every time, with metric
// and histogram rows in sorted name order. Before renderStats existed
// the table was assembled while ranging over the hosts map, so repeated
// invocations (and -watch refreshes) reshuffled output.
func TestRenderStatsStable(t *testing.T) {
	snap := metrics.Snapshot{
		Values: map[string]int64{
			"sched.tasks_total": 40,
			"cache.hits":        31,
			"fs.blocks_written": 12,
			"cache.misses":      9,
		},
		Hists: map[string]metrics.HistSnapshot{
			"rpc.latency_ns": {
				Bounds: []int64{1000, 10000, 100000},
				Counts: []int64{5, 3, 1, 0},
				Sum:    42000,
			},
			"map.compute_ns": {
				Bounds: []int64{1000, 10000, 100000},
				Counts: []int64{0, 8, 2, 0},
				Sum:    90000,
			},
			"empty.hist_ns": { // zero-count histograms are suppressed
				Bounds: []int64{1000},
				Counts: []int64{0, 0},
			},
		},
	}

	var a, b bytes.Buffer
	renderStats(&a, snap, 3, 4)
	renderStats(&b, snap, 3, 4)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("two renders of the same snapshot differ:\n--- a\n%s--- b\n%s", a.String(), b.String())
	}

	out := a.String()
	if !strings.HasPrefix(out, "cluster: 3/4 nodes reporting\n") {
		t.Fatalf("missing reporting header:\n%s", out)
	}
	if strings.Contains(out, "empty.hist_ns") {
		t.Errorf("zero-count histogram rendered:\n%s", out)
	}

	// Both table sections must list rows in sorted metric-name order.
	var valueRows, histRows []string
	inHists := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 || strings.HasPrefix(line, "cluster:") {
			continue
		}
		if fields[0] == "latency" {
			inHists = true
			continue
		}
		if inHists {
			histRows = append(histRows, fields[0])
		} else {
			valueRows = append(valueRows, fields[0])
		}
	}
	wantValues := []string{"cache.hits", "cache.misses", "fs.blocks_written", "sched.tasks_total"}
	wantHists := []string{"map.compute_ns", "rpc.latency_ns"}
	if !sort.StringsAreSorted(valueRows) || strings.Join(valueRows, ",") != strings.Join(wantValues, ",") {
		t.Errorf("value rows = %v, want %v", valueRows, wantValues)
	}
	if !sort.StringsAreSorted(histRows) || strings.Join(histRows, ",") != strings.Join(wantHists, ",") {
		t.Errorf("histogram rows = %v, want %v", histRows, wantHists)
	}
}
