// Command eclipse-cli is the client for a TCP EclipseMR cluster started
// with eclipse-node: it uploads files into the DHT file system, reads
// them back, and submits MapReduce jobs to the job scheduler.
//
// Usage:
//
//	eclipse-cli -hosts hosts.txt upload corpus.txt dht:corpus.txt
//	eclipse-cli -hosts hosts.txt run -app wordcount -inputs dht:corpus.txt
//	eclipse-cli -hosts hosts.txt run -app grep -inputs logs.txt -param pattern=ERROR
//	eclipse-cli -hosts hosts.txt cat dht:corpus.txt
//	eclipse-cli -hosts hosts.txt apps
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	_ "eclipsemr/internal/apps" // same registry as the nodes, for `apps`
	"eclipsemr/internal/cluster"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/nodecmd"
	"eclipsemr/internal/transport"
)

func main() {
	var (
		hostsPath = flag.String("hosts", "", "path to the cluster hosts file")
		user      = flag.String("user", "cli", "user name for permissions")
	)
	flag.Parse()
	if *hostsPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: eclipse-cli -hosts FILE {upload|cat|ls|run|apps|stats} ...")
		os.Exit(2)
	}
	hosts, err := nodecmd.ReadHosts(*hostsPath)
	if err != nil {
		log.Fatalf("eclipse-cli: %v", err)
	}
	net := transport.NewTCP(hosts, 10*time.Minute)
	defer func() {
		if err := net.Close(); err != nil {
			log.Printf("eclipse-cli: closing transport: %v", err)
		}
	}()

	// callAny tries each host in turn: any node can serve DHT requests, so
	// a dead entry in the hosts file must not fail the whole command.
	callAny := func(method string, req, resp interface{}) error {
		ids := make([]hashing.NodeID, 0, len(hosts))
		for id := range hosts {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		var lastErr error
		for _, id := range ids {
			err := nodecmd.Call(net, id, method, req, resp)
			if err == nil {
				return nil
			}
			lastErr = err
			if errors.Is(err, transport.ErrUnreachable) || transport.IsTransient(err) {
				continue // dead or flaky node: the next one can answer
			}
			return err
		}
		return lastErr
	}

	switch cmd := flag.Arg(0); cmd {
	case "upload":
		if flag.NArg() != 3 {
			log.Fatal("usage: upload <local-file> <dht-name>")
		}
		data, err := os.ReadFile(flag.Arg(1))
		if err != nil {
			log.Fatalf("eclipse-cli: %v", err)
		}
		var resp nodecmd.UploadResp
		req := nodecmd.UploadReq{
			Name: flag.Arg(2), Owner: *user, Public: true, Data: data, Records: true,
		}
		if err := callAny(nodecmd.MethodUpload, req, &resp); err != nil {
			log.Fatalf("eclipse-cli: upload: %v", err)
		}
		fmt.Printf("stored %s: %d bytes in %d blocks\n", flag.Arg(2), resp.Size, resp.Blocks)

	case "cat":
		if flag.NArg() != 2 {
			log.Fatal("usage: cat <dht-name>")
		}
		var resp nodecmd.ReadResp
		req := nodecmd.ReadReq{Name: flag.Arg(1), User: *user}
		if err := callAny(nodecmd.MethodRead, req, &resp); err != nil {
			log.Fatalf("eclipse-cli: cat: %v", err)
		}
		os.Stdout.Write(resp.Data)

	case "run":
		runCmd := flag.NewFlagSet("run", flag.ExitOnError)
		app := runCmd.String("app", "", "registered application name")
		inputs := runCmd.String("inputs", "", "comma-separated DHT input files")
		id := runCmd.String("id", "", "job ID (default derived from app and time)")
		reuse := runCmd.String("reuse", "", "reuse tag for shared intermediates")
		var params paramList
		runCmd.Var(&params, "param", "application parameter key=value (repeatable)")
		if err := runCmd.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		if *app == "" || *inputs == "" {
			log.Fatal("usage: run -app NAME -inputs f1,f2 [-param k=v]...")
		}
		if *id == "" {
			*id = fmt.Sprintf("%s-%d", *app, time.Now().UnixNano())
		}
		mgr, err := nodecmd.FindManager(net, hosts)
		if err != nil {
			log.Fatalf("eclipse-cli: %v", err)
		}
		spec := mapreduce.JobSpec{
			ID:       *id,
			App:      *app,
			Inputs:   strings.Split(*inputs, ","),
			User:     *user,
			Params:   params.p,
			ReuseTag: *reuse,
		}
		started := time.Now()
		var runResp nodecmd.RunResp
		if err := nodecmd.Call(net, mgr, nodecmd.MethodRun, nodecmd.RunReq{Spec: spec}, &runResp); err != nil {
			log.Fatalf("eclipse-cli: run: %v", err)
		}
		res := runResp.Result
		fmt.Fprintf(os.Stderr, "job %s: %d map + %d reduce tasks in %v (cache hits %d/%d)\n",
			res.Job, res.MapTasks, res.ReduceTasks, time.Since(started).Round(time.Millisecond),
			res.CacheHits, res.CacheHits+res.CacheMisses)
		var collected nodecmd.CollectResp
		if err := nodecmd.Call(net, mgr, nodecmd.MethodCollect,
			nodecmd.CollectReq{Result: res, User: *user}, &collected); err != nil {
			log.Fatalf("eclipse-cli: collect: %v", err)
		}
		for _, kv := range collected.Pairs {
			fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
		}

	case "ls":
		seen := map[string]bool{}
		for id := range hosts {
			var resp nodecmd.ListResp
			if err := nodecmd.Call(net, id, nodecmd.MethodList, nodecmd.ListReq{User: *user}, &resp); err != nil {
				continue // partial listings are fine: metadata is replicated
			}
			for _, n := range resp.Names {
				seen[n] = true
			}
		}
		names := make([]string, 0, len(seen))
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}

	case "apps":
		for _, name := range mapreduce.RegisteredApps() {
			fmt.Println(name)
		}

	case "stats":
		statsCmd := flag.NewFlagSet("stats", flag.ExitOnError)
		watch := statsCmd.Bool("watch", false, "redraw the merged snapshot periodically")
		interval := statsCmd.Duration("interval", 2*time.Second, "refresh interval with -watch")
		if err := statsCmd.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		for {
			if *watch {
				fmt.Print("\x1b[H\x1b[2J") // home + clear, like watch(1)
			}
			printClusterStats(net, hosts)
			if !*watch {
				break
			}
			time.Sleep(*interval)
		}

	default:
		log.Fatalf("eclipse-cli: unknown command %q", cmd)
	}
}

// printClusterStats fetches every node's snapshot, merges them (values
// summed, histogram buckets added) and renders values followed by
// latency-histogram quantiles.
func printClusterStats(net transport.Network, hosts map[hashing.NodeID]string) {
	total := metrics.NewSnapshot()
	reached := 0
	for id := range hosts {
		var resp cluster.StatsResp
		if err := nodecmd.Call(net, id, cluster.MethodStats, struct{}{}, &resp); err != nil {
			fmt.Fprintf(os.Stderr, "node %s: %v\n", id, err)
			continue
		}
		reached++
		metrics.Merge(&total, resp.Metrics)
	}
	// Ratios cannot be summed across nodes: recompute the cluster-wide
	// hit ratio from the merged hit/miss counters, and drop the per-node
	// partition ratios whose sum is meaningless.
	if lookups := total.Values["cache.hits"] + total.Values["cache.misses"]; lookups > 0 {
		total.Values["cache.hit_ratio_bp"] = total.Values["cache.hits"] * 10000 / lookups
	} else {
		delete(total.Values, "cache.hit_ratio_bp")
	}
	delete(total.Values, "cache.icache.hit_ratio_bp")
	delete(total.Values, "cache.ocache.hit_ratio_bp")

	fmt.Printf("cluster: %d/%d nodes reporting\n\n", reached, len(hosts))
	names := make([]string, 0, len(total.Values))
	for n := range total.Values {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-32s %d\n", n, total.Values[n])
	}
	if len(total.Hists) == 0 {
		return
	}
	fmt.Printf("\n%-32s %8s %10s %10s %10s %10s\n", "latency", "count", "p50", "p90", "p99", "mean")
	names = names[:0]
	for n := range total.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := total.Hists[n]
		if h.Count() == 0 {
			continue
		}
		fmt.Printf("%-32s %8d %10s %10s %10s %10s\n", n, h.Count(),
			fmtNs(h.Quantile(0.50)), fmtNs(h.Quantile(0.90)), fmtNs(h.Quantile(0.99)),
			fmtNs(int64(h.Mean())))
	}
}

// fmtNs renders a nanosecond latency with duration units.
func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// paramList collects repeated -param key=value flags.
type paramList struct {
	p mapreduce.Params
}

func (l *paramList) String() string { return fmt.Sprint(l.p) }

func (l *paramList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want key=value, got %q", v)
	}
	if l.p == nil {
		l.p = mapreduce.Params{}
	}
	l.p[parts[0]] = []byte(parts[1])
	return nil
}
