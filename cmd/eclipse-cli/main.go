// Command eclipse-cli is the client for a TCP EclipseMR cluster started
// with eclipse-node: it uploads files into the DHT file system, reads
// them back, and submits MapReduce jobs to the job scheduler.
//
// Usage:
//
//	eclipse-cli -hosts hosts.txt upload corpus.txt dht:corpus.txt
//	eclipse-cli -hosts hosts.txt run -app wordcount -inputs dht:corpus.txt
//	eclipse-cli -hosts hosts.txt run -app grep -inputs logs.txt -param pattern=ERROR
//	eclipse-cli -hosts hosts.txt cat dht:corpus.txt
//	eclipse-cli -hosts hosts.txt apps
//	eclipse-cli -hosts hosts.txt stats -watch
//	eclipse-cli -hosts hosts.txt trace -o trace.json wordcount-123
//	eclipse-cli -hosts hosts.txt events -kind task,membership wordcount-123
//	eclipse-cli -hosts hosts.txt debug bundle -o bundle.json -job wordcount-123
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	_ "eclipsemr/internal/apps" // same registry as the nodes, for `apps`
	"eclipsemr/internal/bundle"
	"eclipsemr/internal/cluster"
	"eclipsemr/internal/events"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/metrics"
	"eclipsemr/internal/nodecmd"
	"eclipsemr/internal/trace"
	"eclipsemr/internal/transport"
)

func main() {
	var (
		hostsPath = flag.String("hosts", "", "path to the cluster hosts file")
		user      = flag.String("user", "cli", "user name for permissions")
	)
	flag.Parse()
	if *hostsPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: eclipse-cli -hosts FILE {upload|cat|ls|run|job|apps|stats|trace|events|debug} ...")
		os.Exit(2)
	}
	hosts, err := nodecmd.ReadHosts(*hostsPath)
	if err != nil {
		log.Fatalf("eclipse-cli: %v", err)
	}
	net := transport.NewTCP(hosts, 10*time.Minute)
	defer func() {
		if err := net.Close(); err != nil {
			log.Printf("eclipse-cli: closing transport: %v", err)
		}
	}()

	// callAny tries each host in turn: any node can serve DHT requests, so
	// a dead entry in the hosts file must not fail the whole command.
	callAny := func(method string, req, resp interface{}) error {
		var lastErr error
		for _, id := range sortedIDs(hosts) {
			err := nodecmd.Call(net, id, method, req, resp)
			if err == nil {
				return nil
			}
			lastErr = err
			if errors.Is(err, transport.ErrUnreachable) || transport.IsTransient(err) {
				continue // dead or flaky node: the next one can answer
			}
			return err
		}
		return lastErr
	}

	switch cmd := flag.Arg(0); cmd {
	case "upload":
		if flag.NArg() != 3 {
			log.Fatal("usage: upload <local-file> <dht-name>")
		}
		data, err := os.ReadFile(flag.Arg(1))
		if err != nil {
			log.Fatalf("eclipse-cli: %v", err)
		}
		var resp nodecmd.UploadResp
		req := nodecmd.UploadReq{
			Name: flag.Arg(2), Owner: *user, Public: true, Data: data, Records: true,
		}
		if err := callAny(nodecmd.MethodUpload, req, &resp); err != nil {
			log.Fatalf("eclipse-cli: upload: %v", err)
		}
		fmt.Printf("stored %s: %d bytes in %d blocks\n", flag.Arg(2), resp.Size, resp.Blocks)

	case "cat":
		if flag.NArg() != 2 {
			log.Fatal("usage: cat <dht-name>")
		}
		var resp nodecmd.ReadResp
		req := nodecmd.ReadReq{Name: flag.Arg(1), User: *user}
		if err := callAny(nodecmd.MethodRead, req, &resp); err != nil {
			log.Fatalf("eclipse-cli: cat: %v", err)
		}
		os.Stdout.Write(resp.Data)

	case "run":
		runCmd := flag.NewFlagSet("run", flag.ExitOnError)
		app := runCmd.String("app", "", "registered application name")
		inputs := runCmd.String("inputs", "", "comma-separated DHT input files")
		id := runCmd.String("id", "", "job ID (default derived from app and time)")
		reuse := runCmd.String("reuse", "", "reuse tag for shared intermediates")
		var params paramList
		runCmd.Var(&params, "param", "application parameter key=value (repeatable)")
		if err := runCmd.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		if *app == "" || *inputs == "" {
			log.Fatal("usage: run -app NAME -inputs f1,f2 [-param k=v]...")
		}
		if *id == "" {
			*id = fmt.Sprintf("%s-%d", *app, time.Now().UnixNano())
		}
		mgr, err := nodecmd.FindManager(net, hosts)
		if err != nil {
			log.Fatalf("eclipse-cli: %v", err)
		}
		spec := mapreduce.JobSpec{
			ID:       *id,
			App:      *app,
			Inputs:   strings.Split(*inputs, ","),
			User:     *user,
			Params:   params.p,
			ReuseTag: *reuse,
		}
		started := time.Now()
		var runResp nodecmd.RunResp
		if err := nodecmd.Call(net, mgr, nodecmd.MethodRun, nodecmd.RunReq{Spec: spec}, &runResp); err != nil {
			log.Fatalf("eclipse-cli: run: %v", err)
		}
		res := runResp.Result
		fmt.Fprintf(os.Stderr, "job %s: %d map + %d reduce tasks in %v (cache hits %d/%d)\n",
			res.Job, res.MapTasks, res.ReduceTasks, time.Since(started).Round(time.Millisecond),
			res.CacheHits, res.CacheHits+res.CacheMisses)
		var collected nodecmd.CollectResp
		if err := nodecmd.Call(net, mgr, nodecmd.MethodCollect,
			nodecmd.CollectReq{Result: res, User: *user}, &collected); err != nil {
			log.Fatalf("eclipse-cli: collect: %v", err)
		}
		for _, kv := range collected.Pairs {
			fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
		}

	case "job":
		if flag.NArg() < 2 {
			log.Fatal("usage: job {ls | resume <job-id>}")
		}
		switch sub := flag.Arg(1); sub {
		case "ls":
			mgr, err := nodecmd.FindManager(net, hosts)
			if err != nil {
				log.Fatalf("eclipse-cli: %v", err)
			}
			var resp nodecmd.JobsResp
			if err := nodecmd.Call(net, mgr, nodecmd.MethodJobs, nodecmd.ResumeReq{}, &resp); err != nil {
				log.Fatalf("eclipse-cli: job ls: %v", err)
			}
			if len(resp.Jobs) == 0 {
				fmt.Fprintln(os.Stderr, "no interrupted jobs")
				break
			}
			for _, id := range resp.Jobs {
				fmt.Println(id)
			}
		case "resume":
			if flag.NArg() != 3 {
				log.Fatal("usage: job resume <job-id>")
			}
			mgr, err := nodecmd.FindManager(net, hosts)
			if err != nil {
				log.Fatalf("eclipse-cli: %v", err)
			}
			started := time.Now()
			var runResp nodecmd.RunResp
			req := nodecmd.ResumeReq{Job: flag.Arg(2)}
			if err := nodecmd.Call(net, mgr, nodecmd.MethodResume, req, &runResp); err != nil {
				log.Fatalf("eclipse-cli: job resume: %v", err)
			}
			res := runResp.Result
			fmt.Fprintf(os.Stderr, "job %s resumed: %d map + %d reduce tasks re-executed, %d partitions recovered, done in %v\n",
				res.Job, res.MapTasks, res.ReduceTasks, res.RecoveredPartitions,
				time.Since(started).Round(time.Millisecond))
			var collected nodecmd.CollectResp
			if err := nodecmd.Call(net, mgr, nodecmd.MethodCollect,
				nodecmd.CollectReq{Result: res, User: *user}, &collected); err != nil {
				log.Fatalf("eclipse-cli: collect: %v", err)
			}
			for _, kv := range collected.Pairs {
				fmt.Printf("%s\t%s\n", kv.Key, kv.Value)
			}
		default:
			log.Fatalf("eclipse-cli: unknown job subcommand %q", sub)
		}

	case "ls":
		seen := map[string]bool{}
		for _, id := range sortedIDs(hosts) {
			var resp nodecmd.ListResp
			if err := nodecmd.Call(net, id, nodecmd.MethodList, nodecmd.ListReq{User: *user}, &resp); err != nil {
				continue // partial listings are fine: metadata is replicated
			}
			for _, n := range resp.Names {
				seen[n] = true
			}
		}
		names := make([]string, 0, len(seen))
		for n := range seen {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}

	case "apps":
		for _, name := range mapreduce.RegisteredApps() {
			fmt.Println(name)
		}

	case "stats":
		statsCmd := flag.NewFlagSet("stats", flag.ExitOnError)
		watch := statsCmd.Bool("watch", false, "redraw the merged snapshot periodically")
		interval := statsCmd.Duration("interval", 2*time.Second, "refresh interval with -watch")
		if err := statsCmd.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		for {
			if *watch {
				fmt.Print("\x1b[H\x1b[2J") // home + clear, like watch(1)
			}
			printClusterStats(net, hosts)
			if !*watch {
				break
			}
			time.Sleep(*interval)
		}

	case "trace":
		traceCmd := flag.NewFlagSet("trace", flag.ExitOnError)
		out := traceCmd.String("o", "", "write Chrome trace-event JSON to this file")
		if err := traceCmd.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		if traceCmd.NArg() != 1 {
			log.Fatal("usage: trace [-o trace.json] <job-id>")
		}
		jobID := traceCmd.Arg(0)

		// Every node keeps its own span ring; collect them all and merge.
		// The driver re-emits spans for tasks it dispatched, so Dedupe
		// collapses duplicates by span ID.
		var (
			spans   []trace.Span
			dropped int64
			reached int
		)
		for _, id := range sortedIDs(hosts) {
			var resp cluster.SpansResp
			err := nodecmd.Call(net, id, cluster.MethodSpans, cluster.SpansReq{Trace: jobID}, &resp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "node %s: %v\n", id, err)
				continue
			}
			reached++
			spans = append(spans, resp.Spans...)
			dropped += resp.Dropped
		}
		if reached == 0 {
			log.Fatal("eclipse-cli: trace: no node reachable")
		}
		spans = trace.Dedupe(spans)
		if len(spans) == 0 {
			log.Fatalf("eclipse-cli: trace: no spans for job %q (was the cluster started with tracing enabled?)", jobID)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d spans overwritten in node rings; the trace is incomplete\n", dropped)
		}
		fmt.Print(trace.RenderTimeline(spans))
		if *out != "" {
			data, err := trace.ChromeTrace(spans)
			if err != nil {
				log.Fatalf("eclipse-cli: trace: %v", err)
			}
			if err := os.WriteFile(*out, data, 0o644); err != nil {
				log.Fatalf("eclipse-cli: trace: %v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %d spans to %s (load in Perfetto or chrome://tracing)\n", len(spans), *out)
		}

	case "events":
		evCmd := flag.NewFlagSet("events", flag.ExitOnError)
		kindsFlag := evCmd.String("kind", "", "comma-separated event kinds to keep (e.g. task,shuffle,membership)")
		nodeFlag := evCmd.String("node", "", "keep only events emitted by this node")
		sinceFlag := evCmd.Duration("since", 0, "keep only events from the last DURATION (e.g. 5m)")
		allFlag := evCmd.Bool("all", false, "every job plus cluster-scoped events (membership, fs repair)")
		if err := evCmd.Parse(flag.Args()[1:]); err != nil {
			log.Fatal(err)
		}
		var jobID string
		switch {
		case *allFlag && evCmd.NArg() == 0:
			jobID = "" // every job plus cluster-scoped membership events
		case !*allFlag && evCmd.NArg() == 1:
			jobID = evCmd.Arg(0)
		default:
			log.Fatalf("usage: events [-kind k1,k2] [-node id] [-since 5m] {<job-id> | -all}\nkinds: %s", strings.Join(events.Kinds(), ","))
		}
		kinds, err := events.ParseKinds(*kindsFlag)
		if err != nil {
			log.Fatalf("eclipse-cli: events: %v", err)
		}

		// Every node keeps its own event ring; collect them all and merge
		// into one deterministic timeline.
		var (
			evs     []events.Event
			dropped int64
			reached int
		)
		for _, id := range sortedIDs(hosts) {
			var resp cluster.EventsResp
			err := nodecmd.Call(net, id, cluster.MethodEvents, cluster.EventsReq{Job: jobID}, &resp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "node %s: %v\n", id, err)
				continue
			}
			reached++
			evs = append(evs, resp.Events...)
			dropped += resp.Dropped
		}
		if reached == 0 {
			log.Fatal("eclipse-cli: events: no node reachable")
		}
		evs = events.Merge(evs)
		f := events.Filter{Kinds: kinds, Node: *nodeFlag}
		if *sinceFlag > 0 && len(evs) > 0 {
			// Node clocks stamp the events, so "the last 5m" is anchored on
			// the newest collected event, not this machine's clock.
			f.SinceNS = evs[len(evs)-1].AtNS - sinceFlag.Nanoseconds()
		}
		evs = events.Apply(evs, f)
		if len(evs) == 0 {
			if jobID == "" {
				log.Fatal("eclipse-cli: events: nothing matched")
			}
			log.Fatalf("eclipse-cli: events: nothing matched for job %q", jobID)
		}
		if dropped > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d events overwritten in node rings; the timeline is incomplete\n", dropped)
		}
		fmt.Print(events.Render(evs))

	case "debug":
		if flag.NArg() < 2 || flag.Arg(1) != "bundle" {
			log.Fatal("usage: debug bundle [-o bundle.json] [-job id] [-reason why]")
		}
		dbCmd := flag.NewFlagSet("debug bundle", flag.ExitOnError)
		out := dbCmd.String("o", "bundle.json", "write the debug bundle to this file")
		job := dbCmd.String("job", "", "restrict the bundle to one job (default: everything)")
		reason := dbCmd.String("reason", "manual", "capture reason recorded in the bundle")
		if err := dbCmd.Parse(flag.Args()[2:]); err != nil {
			log.Fatal(err)
		}
		// Any node can assemble the bundle: it fans the collection RPCs
		// over its own membership view. Prefer the manager (its ring holds
		// the driver's job lifecycle events), fall back to any node.
		target, err := nodecmd.FindManager(net, hosts)
		if err != nil {
			for _, id := range sortedIDs(hosts) {
				var probe cluster.StatsResp
				if nodecmd.Call(net, id, cluster.MethodStats, struct{}{}, &probe) == nil {
					target, err = id, nil
					break
				}
			}
		}
		if err != nil {
			log.Fatalf("eclipse-cli: debug bundle: no node reachable: %v", err)
		}
		var resp cluster.BundleResp
		req := cluster.BundleReq{Job: *job, Reason: *reason}
		if err := nodecmd.Call(net, target, cluster.MethodBundle, req, &resp); err != nil {
			log.Fatalf("eclipse-cli: debug bundle: %v", err)
		}
		b, err := bundle.Decode(resp.Data)
		if err != nil {
			log.Fatalf("eclipse-cli: debug bundle: malformed bundle: %v", err)
		}
		if err := os.WriteFile(*out, resp.Data, 0o644); err != nil {
			log.Fatalf("eclipse-cli: debug bundle: %v", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s: %d events, %d spans, %d metric nodes, %d journal entries, %d members (assembled by %s)\n",
			*out, len(b.Events), len(b.Spans), len(b.Metrics), len(b.Journal), len(b.Membership.Members), target)

	default:
		log.Fatalf("eclipse-cli: unknown command %q", cmd)
	}
}

// printClusterStats fetches every node's snapshot, merges them (values
// summed, histogram buckets added) and renders values followed by
// latency-histogram quantiles.
func printClusterStats(net transport.Network, hosts map[hashing.NodeID]string) {
	total := metrics.NewSnapshot()
	reached := 0
	for _, id := range sortedIDs(hosts) {
		var resp cluster.StatsResp
		if err := nodecmd.Call(net, id, cluster.MethodStats, struct{}{}, &resp); err != nil {
			fmt.Fprintf(os.Stderr, "node %s: %v\n", id, err)
			continue
		}
		reached++
		metrics.Merge(&total, resp.Metrics)
	}
	// Ratios cannot be summed across nodes: recompute the cluster-wide
	// hit ratio from the merged hit/miss counters, and drop the per-node
	// partition ratios whose sum is meaningless.
	if lookups := total.Values["cache.hits"] + total.Values["cache.misses"]; lookups > 0 {
		total.Values["cache.hit_ratio_bp"] = total.Values["cache.hits"] * 10000 / lookups
	} else {
		delete(total.Values, "cache.hit_ratio_bp")
	}
	delete(total.Values, "cache.icache.hit_ratio_bp")
	delete(total.Values, "cache.ocache.hit_ratio_bp")

	renderStats(os.Stdout, total, reached, len(hosts))
}

// paramList collects repeated -param key=value flags.
type paramList struct {
	p mapreduce.Params
}

func (l *paramList) String() string { return fmt.Sprint(l.p) }

func (l *paramList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want key=value, got %q", v)
	}
	if l.p == nil {
		l.p = mapreduce.Params{}
	}
	l.p[parts[0]] = []byte(parts[1])
	return nil
}
