package eclipsemr_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"eclipsemr"
	"eclipsemr/internal/apps"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/workloads"
)

// These tests exercise the repository's public surface the way a
// downstream user would: boot a cluster through the facade, use the
// shipped applications and register a custom one.

func newFacadeCluster(t *testing.T, n int, opts eclipsemr.Options) *eclipsemr.Cluster {
	t.Helper()
	if opts.Config.BlockSize == 0 {
		opts.Config.BlockSize = 1024
	}
	if opts.Config.CacheBytes == 0 {
		opts.Config.CacheBytes = 8 << 20
	}
	c, err := eclipsemr.NewCluster(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestFacadeWordCount(t *testing.T) {
	c := newFacadeCluster(t, 4, eclipsemr.Options{Policy: eclipsemr.PolicyLAF})
	text := []byte(strings.Repeat("go gopher go\n", 500))
	meta, err := c.UploadRecords("f.txt", "u", eclipsemr.PermPublic, text, '\n')
	if err != nil {
		t.Fatal(err)
	}
	if meta.Blocks() < 2 {
		t.Fatalf("blocks = %d", meta.Blocks())
	}
	res, err := c.Run(eclipsemr.JobSpec{
		ID: "facade-wc", App: apps.WordCount, Inputs: []string{"f.txt"}, User: "u",
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]string{}
	for _, kv := range pairs {
		counts[kv.Key] = string(kv.Value)
	}
	if counts["go"] != "1000" || counts["gopher"] != "500" {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFacadeCustomApplication(t *testing.T) {
	eclipsemr.Register("facade-linelen", eclipsemr.App{
		Map: func(_ eclipsemr.Params, input []byte, emit eclipsemr.Emit) error {
			for _, line := range strings.Split(string(input), "\n") {
				if line == "" {
					continue
				}
				if err := emit(strconv.Itoa(len(line)), []byte("1")); err != nil {
					return err
				}
			}
			return nil
		},
		Reduce: func(_ eclipsemr.Params, key string, values [][]byte, emit eclipsemr.Emit) error {
			return emit(key, []byte(strconv.Itoa(len(values))))
		},
	})
	found := false
	for _, name := range eclipsemr.RegisteredApps() {
		if name == "facade-linelen" {
			found = true
		}
	}
	if !found {
		t.Fatal("custom app not listed")
	}
	c := newFacadeCluster(t, 3, eclipsemr.Options{})
	text := []byte("aa\nbbb\naa\ncccc\nbbb\nbbb\n")
	if _, err := c.UploadRecords("lines.txt", "u", eclipsemr.PermPublic, text, '\n'); err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(eclipsemr.JobSpec{
		ID: "facade-ll", App: "facade-linelen", Inputs: []string{"lines.txt"}, User: "u",
	})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := c.Collect(res, "u")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, kv := range pairs {
		got[kv.Key] = string(kv.Value)
	}
	if got["2"] != "2" || got["3"] != "3" || got["4"] != "1" {
		t.Fatalf("line-length histogram = %v", got)
	}
}

func TestFacadeFileLifecycle(t *testing.T) {
	c := newFacadeCluster(t, 3, eclipsemr.Options{})
	data := workloads.Text(5, 8<<10, 100)
	if _, err := c.Upload("life.dat", "owner", eclipsemr.PermPrivate, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("life.dat", "owner")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back: %v", err)
	}
	// Private file: others cannot read it.
	if _, err := c.ReadFile("life.dat", "stranger"); !dhtfs.IsPermission(err) {
		t.Fatalf("stranger read err = %v", err)
	}
	if err := c.DeleteFile("life.dat", "owner"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("life.dat", "owner"); !dhtfs.IsNotFound(err) {
		t.Fatalf("read after delete err = %v", err)
	}
}

func TestFacadeIterativeDriversAndMigration(t *testing.T) {
	c := newFacadeCluster(t, 4, eclipsemr.Options{Policy: eclipsemr.PolicyLAF})
	data, _ := workloads.Points(9, 400, 2, 2)
	if _, err := c.UploadRecords("pts.csv", "u", eclipsemr.PermPublic, data, '\n'); err != nil {
		t.Fatal(err)
	}
	res, err := apps.RunKMeans(c, "pts.csv", "u", [][]float64{{1, 1}, {-1, -1}}, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %v", res.Centroids)
	}
	// The cache-migration option runs cluster-wide without error (zero
	// migrations is fine — ranges may not have moved).
	if _, err := c.MigrateMisplacedCaches(); err != nil {
		t.Fatal(err)
	}
	if st := c.CacheStats(); st.Insertions == 0 {
		t.Fatal("no cache activity recorded")
	}
}

func TestFacadeDefaultLAFConfig(t *testing.T) {
	cfg := eclipsemr.DefaultLAFConfig()
	if cfg.KDE.Alpha != 0.001 {
		t.Fatalf("alpha = %g", cfg.KDE.Alpha)
	}
}
