// Package eclipsemr is the public API of the EclipseMR reproduction: a
// MapReduce framework built on double-layered consistent hash rings — a
// decentralized DHT file system and a distributed in-memory key-value
// cache — scheduled by a locality-aware fair (LAF) job scheduler
// (Sanchez et al., "EclipseMR: Distributed and Parallel Task Processing
// with Consistent Hashing", IEEE CLUSTER 2017).
//
// The quickest way in:
//
//	c, err := eclipsemr.NewCluster(8, eclipsemr.Options{})
//	defer c.Close()
//	c.UploadRecords("corpus.txt", "me", eclipsemr.PermPublic, text, '\n')
//	res, err := c.Run(eclipsemr.JobSpec{
//	    ID: "wc-1", App: "wordcount", Inputs: []string{"corpus.txt"}, User: "me",
//	})
//	pairs, err := c.Collect(res, "me")
//
// Applications are registered by name with Register (word count, grep,
// inverted index, sort, k-means, page rank and logistic regression ship
// in this module — import eclipsemr/internal/apps from within the module
// or register your own). Iterative helpers live next to the applications.
package eclipsemr

import (
	"eclipsemr/internal/cluster"
	"eclipsemr/internal/dhtfs"
	"eclipsemr/internal/hashing"
	"eclipsemr/internal/mapreduce"
	"eclipsemr/internal/scheduler"
)

// Re-exported core types. The facade is intentionally thin: the cluster
// package is the real implementation and these aliases keep one import
// path for users.
type (
	// Cluster is a running EclipseMR deployment (in-process by default).
	Cluster = cluster.Cluster
	// Options configures a cluster.
	Options = cluster.Options
	// Config holds node-level parameters.
	Config = cluster.Config
	// Policy selects the scheduling algorithm.
	Policy = cluster.Policy
	// JobSpec describes a MapReduce job.
	JobSpec = mapreduce.JobSpec
	// Result summarizes a completed job.
	Result = mapreduce.Result
	// KV is one key-value pair.
	KV = mapreduce.KV
	// App is a registered MapReduce application.
	App = mapreduce.App
	// Params carries per-job application parameters.
	Params = mapreduce.Params
	// Emit receives emitted pairs.
	Emit = mapreduce.Emit
	// Metadata describes a stored file.
	Metadata = dhtfs.Metadata
	// Perm is a file access permission.
	Perm = dhtfs.Perm
	// NodeID names a worker server.
	NodeID = hashing.NodeID
	// LAFConfig parameterizes the LAF scheduler.
	LAFConfig = scheduler.LAFConfig
)

// Scheduling policies.
const (
	PolicyLAF   = cluster.PolicyLAF
	PolicyDelay = cluster.PolicyDelay
	PolicyFair  = cluster.PolicyFair
)

// File permissions.
const (
	PermPrivate = dhtfs.PermPrivate
	PermPublic  = dhtfs.PermPublic
)

// NewCluster boots an in-process cluster of n nodes.
func NewCluster(n int, opts Options) (*Cluster, error) {
	return cluster.New(n, opts)
}

// NewClusterWithNodes boots a cluster with explicit node IDs.
func NewClusterWithNodes(ids []NodeID, opts Options) (*Cluster, error) {
	return cluster.NewWithNodes(ids, opts)
}

// Register installs a MapReduce application under a name; jobs reference
// applications by name because tasks execute on remote workers.
func Register(name string, app App) {
	mapreduce.Register(name, app)
}

// RegisteredApps lists the registered application names.
func RegisteredApps() []string {
	return mapreduce.RegisteredApps()
}

// DefaultLAFConfig returns the paper's LAF parameters (alpha = 0.001).
func DefaultLAFConfig() LAFConfig {
	return scheduler.DefaultLAFConfig()
}
